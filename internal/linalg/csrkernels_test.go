package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// refGrad folds the scalar per-point path (Dot → multiplier → Axpy,
// exactly what mllib's Gradient.Compute does) over the selected rows in
// order. It is the bitwise reference every kernel result must match.
func refGrad(kind CSRGradKind, m *CSRMatrix, rows []int32, w, cum []float64) (lossSum, count float64) {
	n := m.Rows()
	if rows != nil {
		n = len(rows)
	}
	for i := 0; i < n; i++ {
		r := i
		if rows != nil {
			r = int(rows[i])
		}
		x := m.Row(r)
		label := m.Label(r)
		var loss float64
		switch kind {
		case CSRLogistic:
			margin := -Dot(w, x)
			mult := 1.0/(1.0+math.Exp(margin)) - label
			Axpy(mult, x, cum)
			if label > 0 {
				loss = Log1pExp(margin)
			} else {
				loss = Log1pExp(margin) - margin
			}
		case CSRLeastSquares:
			diff := Dot(w, x) - label
			Axpy(diff, x, cum)
			loss = diff * diff / 2
		case CSRHinge:
			scaled := 2*label - 1
			dot := Dot(w, x)
			if 1-scaled*dot > 0 {
				Axpy(-scaled, x, cum)
				loss = 1 - scaled*dot
			}
		}
		lossSum += loss
		count++
	}
	return
}

// refKMeans folds the scalar nearest-center seqOp (mllib's sqDist
// arithmetic) over all rows in order, into TrainKMeans's accumulator
// layout.
func refKMeans(m *CSRMatrix, centers []float64, k, dim int, acc []float64) {
	for r := 0; r < m.Rows(); r++ {
		x := m.Row(r)
		best, bestDist := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			center := centers[c*dim : (c+1)*dim]
			var cNorm float64
			for _, v := range center {
				cNorm += v * v
			}
			var xNorm, dot float64
			for i, ix := range x.Indices {
				v := x.Values[i]
				xNorm += v * v
				dot += center[ix] * v
			}
			d := cNorm - 2*dot + xNorm
			if d < 0 {
				d = 0
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		for i, ix := range x.Indices {
			acc[best*dim+int(ix)] += x.Values[i]
		}
		acc[k*dim+best]++
		acc[k*dim+k] += bestDist
	}
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %v (%#x) want %v (%#x)", name, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

var csrKernelKinds = []struct {
	name string
	kind CSRGradKind
}{
	{"logistic", CSRLogistic},
	{"leastsquares", CSRLeastSquares},
	{"hinge", CSRHinge},
}

// TestCSRGradBitwise is the gating property test for GDConfig.Packed:
// for every gradient family, partition shape, and worker count, the
// fused kernel's (cum, loss, count) must equal the sequential per-point
// fold bit for bit.
func TestCSRGradBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		rows, dim int
		density   float64
	}{
		{0, 5, 0.5},    // empty partition
		{1, 40, 0.3},   // single row
		{3, 8, 0.9},    // tiny, below parallel cutoff
		{300, 64, 0.9}, // dense-ish
		{500, 200, 0.05},
		{400, 100, -1}, // mixed degenerate rows
	}
	for _, kc := range csrKernelKinds {
		for si, s := range shapes {
			m := randCSR(rng, s.rows, s.dim, s.density)
			w := make([]float64, m.Dim)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			refCum := make([]float64, m.Dim)
			refLoss, refCount := refGrad(kc.kind, m, nil, w, refCum)
			for _, workers := range []int{1, 2, 3, 8} {
				cum := make([]float64, m.Dim)
				loss, count := CSRGrad(kc.kind, m, nil, w, cum, workers)
				if math.Float64bits(loss) != math.Float64bits(refLoss) || count != refCount {
					t.Fatalf("%s shape%d w%d: loss/count %v/%v want %v/%v",
						kc.name, si, workers, loss, count, refLoss, refCount)
				}
				bitsEqual(t, kc.name+"/cum", cum, refCum)
			}
		}
	}
}

// TestCSRGradSampledBitwise covers the minibatch path: a sampled row
// subset (with repeats-free but arbitrary-order indices) folds
// identically through the kernel at any worker count.
func TestCSRGradSampledBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 400, 80, -1)
	w := make([]float64, m.Dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, frac := range []float64{0, 0.01, 0.3, 1} {
		var rows []int32
		for r := 0; r < m.Rows(); r++ {
			if rng.Float64() < frac {
				rows = append(rows, int32(r))
			}
		}
		if rows == nil {
			rows = []int32{}
		}
		for _, kc := range csrKernelKinds {
			refCum := make([]float64, m.Dim)
			refLoss, refCount := refGrad(kc.kind, m, rows, w, refCum)
			for _, workers := range []int{1, 4, 8} {
				cum := make([]float64, m.Dim)
				loss, count := CSRGrad(kc.kind, m, rows, w, cum, workers)
				if math.Float64bits(loss) != math.Float64bits(refLoss) || count != refCount {
					t.Fatalf("%s frac=%v w%d: loss/count %v/%v want %v/%v",
						kc.name, frac, workers, loss, count, refLoss, refCount)
				}
				bitsEqual(t, kc.name+"/cum", cum, refCum)
			}
		}
	}
}

// TestCSRHingeZeroMultiplier pins the ±0 edge: an inactive hinge row
// performs no accumulator writes at all (matching the scalar path,
// which skips Axpy), while an active row with scaled == 0 (pathological
// label 0.5 → mult -0) still scatters. 0·v additions would flip -0
// accumulator elements, so skipping must key on the sign bit.
func TestCSRHingeZeroMultiplier(t *testing.T) {
	b := NewCSRBuilder(4, 0, 0)
	// label 1 → scaled 1; dot will be 2 → 1-2 < 0 → inactive.
	if err := b.AppendRow(1, []int32{0}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	// label 0.5 → scaled 0 → 1-0 > 0 → active with mult = -0.
	if err := b.AppendRow(0.5, []int32{1, 2}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 0, 0, 0}
	for _, workers := range []int{1, 8} {
		// Seed cum with -0 so any spurious += 0 write flips it to +0.
		cum := []float64{math.Copysign(0, -1), math.Copysign(0, -1), 1, math.Copysign(0, -1)}
		refCum := append([]float64(nil), cum...)
		refLoss, _ := refGrad(CSRHinge, m, nil, w, refCum)
		loss, _ := CSRGrad(CSRHinge, m, nil, w, cum, workers)
		if math.Float64bits(loss) != math.Float64bits(refLoss) {
			t.Fatalf("w%d: loss %v want %v", workers, loss, refLoss)
		}
		bitsEqual(t, "cum", cum, refCum)
		if !math.Signbit(cum[0]) == math.Signbit(refCum[0]) {
			t.Fatal("sign bit mismatch on untouched element")
		}
	}
}

// TestCSRKMeansBitwise gates the packed KMeans path the same way.
func TestCSRKMeansBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := []struct {
		rows, dim, k int
	}{
		{0, 6, 2}, {1, 10, 3}, {250, 32, 5}, {400, 80, 8},
	}
	for si, s := range shapes {
		m := randCSR(rng, s.rows, s.dim, -1)
		m.Labels = nil
		centers := make([]float64, s.k*m.Dim)
		for i := range centers {
			centers[i] = rng.NormFloat64()
		}
		ref := make([]float64, s.k*m.Dim+s.k+1)
		refKMeans(m, centers, s.k, m.Dim, ref)
		cNorms := make([]float64, s.k)
		CSRKMeansCenterNorms(centers, s.k, m.Dim, cNorms)
		for _, workers := range []int{1, 2, 8} {
			acc := make([]float64, len(ref))
			CSRKMeans(m, centers, cNorms, s.k, m.Dim, acc, workers)
			if len(acc) != len(ref) {
				t.Fatal("length mismatch")
			}
			for i := range ref {
				if math.Float64bits(acc[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("shape%d w%d acc[%d]: got %v want %v", si, workers, i, acc[i], ref[i])
				}
			}
		}
	}
}

// TestPackedKernelOverhead is the `make overhead` gate: steady-state
// fused gradient iterations allocate nothing, sequential or sharded.
func TestPackedKernelOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randCSR(rng, 2000, 128, 0.15)
	w := make([]float64, m.Dim)
	cum := make([]float64, m.Dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"seq", 1}, {"cores4", 4},
	} {
		// Warm up: pool scratch, lazy column histogram.
		CSRGrad(CSRLogistic, m, nil, w, cum, cfg.workers)
		allocs := testing.AllocsPerRun(50, func() {
			CSRGrad(CSRLogistic, m, nil, w, cum, cfg.workers)
		})
		if allocs != 0 {
			t.Errorf("packed row loop (%s): %.1f allocs/op, want 0", cfg.name, allocs)
		}
	}
}

// benchCSR builds the dense-profile shape used by the compute sweep:
// uniform rows of ~15-20 entries.
func benchCSR(rows, dim int) (*CSRMatrix, []float64) {
	rng := rand.New(rand.NewSource(6))
	b := NewCSRBuilder(dim, rows, rows*18)
	for r := 0; r < rows; r++ {
		b.StartRow(float64(rng.Intn(2)))
		nnz := 15 + rng.Intn(6)
		stride := dim / nnz
		for j := 0; j < nnz; j++ {
			if err := b.AppendEntry(int32(j*stride+rng.Intn(stride)), rng.NormFloat64()); err != nil {
				panic(err)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return m, w
}

func BenchmarkGradPerPoint(b *testing.B) {
	m, w := benchCSR(20000, 1000)
	cum := make([]float64, m.Dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refGrad(CSRLogistic, m, nil, w, cum)
	}
	b.ReportMetric(float64(m.Rows())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkGradPacked(b *testing.B) {
	m, w := benchCSR(20000, 1000)
	cum := make([]float64, m.Dim)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "c1", 4: "c4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CSRGrad(CSRLogistic, m, nil, w, cum, workers)
			}
			b.ReportMetric(float64(m.Rows())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}
