package linalg

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"sparker/internal/serde"
)

func mustSparse(t *testing.T, dim int, idx []int32, vals []float64) SparseVector {
	t.Helper()
	v, err := NewSparse(dim, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(4, []int32{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewSparse(4, []int32{1, 1}, []float64{1, 2}); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := NewSparse(4, []int32{2, 1}, []float64{1, 2}); err == nil {
		t.Error("decreasing index should fail")
	}
	if _, err := NewSparse(4, []int32{4}, []float64{1}); err == nil {
		t.Error("out-of-dim index should fail")
	}
	if _, err := NewSparse(4, nil, nil); err != nil {
		t.Errorf("empty vector should be valid: %v", err)
	}
}

func TestAtAndDense(t *testing.T) {
	v := mustSparse(t, 6, []int32{1, 3, 5}, []float64{10, 30, 50})
	wantDense := []float64{0, 10, 0, 30, 0, 50}
	if !reflect.DeepEqual(v.Dense(), wantDense) {
		t.Fatalf("Dense = %v", v.Dense())
	}
	for i, want := range wantDense {
		if got := v.At(i); got != want {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
	if v.NNZ() != 3 {
		t.Errorf("NNZ = %d", v.NNZ())
	}
}

func TestDotMatchesDense(t *testing.T) {
	v := mustSparse(t, 5, []int32{0, 2, 4}, []float64{1, -2, 3})
	w := []float64{2, 9, 4, 9, 0.5}
	want := 2.0 - 8 + 1.5
	if got := Dot(w, v); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
	if got := DotDense(w, v.Dense()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DotDense = %v, want %v", got, want)
	}
}

func TestAxpy(t *testing.T) {
	v := mustSparse(t, 4, []int32{1, 3}, []float64{2, -1})
	y := []float64{1, 1, 1, 1}
	Axpy(0.5, v, y)
	want := []float64{1, 2, 1, 0.5}
	if !reflect.DeepEqual(y, want) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestAxpyDenseAndScal(t *testing.T) {
	y := []float64{1, 2}
	AxpyDense(2, []float64{3, 4}, y)
	if !reflect.DeepEqual(y, []float64{7, 10}) {
		t.Fatalf("AxpyDense = %v", y)
	}
	Scal(0.5, y)
	if !reflect.DeepEqual(y, []float64{3.5, 5}) {
		t.Fatalf("Scal = %v", y)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v", got)
	}
}

func TestSparseSerdeRoundTrip(t *testing.T) {
	v := mustSparse(t, 100, []int32{0, 50, 99}, []float64{-1.5, 2.5, 3})
	b, err := serde.Encode(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := serde.Decode(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: %v (n=%d/%d)", err, n, len(b))
	}
	if !reflect.DeepEqual(got.(SparseVector), v) {
		t.Fatalf("roundtrip: got %+v", got)
	}
}

func TestQuickDotAgainstDense(t *testing.T) {
	f := func(raw []float64, dimRaw uint8) bool {
		dim := int(dimRaw%32) + 1
		var idx []int32
		var vals []float64
		for i, r := range raw {
			if i >= dim {
				break
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			// Clamp magnitude: the property is about index bookkeeping,
			// not about float association order at 1e308 scales.
			r = math.Mod(r, 1e6)
			if int64(i)%2 == 0 { // make it sparse
				idx = append(idx, int32(i))
				vals = append(vals, r)
			}
		}
		v, err := NewSparse(dim, idx, vals)
		if err != nil {
			return false
		}
		w := make([]float64, dim)
		for i := range w {
			w[i] = float64(i) * 0.25
		}
		got := Dot(w, v)
		want := DotDense(w, v.Dense())
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSparseRoundTrip(t *testing.T) {
	f := func(vals []float64, dimRaw uint8) bool {
		dim := len(vals) + int(dimRaw)%8 + 1
		idx := make([]int32, len(vals))
		for i := range idx {
			idx[i] = int32(i)
		}
		v, err := NewSparse(dim, idx, vals)
		if err != nil {
			return false
		}
		b, err := serde.Encode(nil, v)
		if err != nil {
			return false
		}
		got, _, err := serde.Decode(b)
		if err != nil {
			return false
		}
		gv := got.(SparseVector)
		if gv.Dim != v.Dim || gv.NNZ() != v.NNZ() {
			return false
		}
		for i := range vals {
			if gv.Values[i] != vals[i] && !(math.IsNaN(gv.Values[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
