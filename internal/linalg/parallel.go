package linalg

// Strided parallel kernels: a persistent worker pool that shards an
// index range across cores with deterministic, contiguous boundaries.
// The collective layer uses it to run the fused decode-reduce of large
// wire chunks on several cores at once; because every shard applies the
// same sequential kernel to a disjoint contiguous element range, the
// result is bitwise identical to the single-threaded pass regardless of
// worker count or scheduling order.
//
// The pool is package-lifetime: workers start lazily on first use and
// never exit. Steady-state dispatch is allocation-free — tasks are
// structs sent by value on a buffered channel, and completion tokens
// flow through a channel the caller recycles via a sync.Pool.

import (
	"runtime"
	"sync"
)

// pfTask is one shard of a ParallelFor: run body over [lo, hi).
type pfTask struct {
	body func(lo, hi int)
	lo   int
	hi   int
	done chan<- struct{}
}

var pfPool struct {
	once  sync.Once
	tasks chan pfTask
}

// doneTokens recycles completion channels across ParallelFor calls.
// Capacity covers the largest shard fan-out a single call can post.
var doneTokens = sync.Pool{New: func() any { return make(chan struct{}, maxParallelWorkers) }}

// maxParallelWorkers caps the shard count of one ParallelFor call; the
// pool itself is sized to the machine, so asking for more workers than
// cores just queues shards.
const maxParallelWorkers = 64

func startPFPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	pfPool.tasks = make(chan pfTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range pfPool.tasks {
				t.body(t.lo, t.hi)
				t.done <- struct{}{}
			}
		}()
	}
}

// ParallelFor splits [0, n) into `workers` contiguous shards and runs
// body on each, using the calling goroutine for the first shard and the
// persistent pool for the rest. It returns when every shard has
// finished. Shard boundaries depend only on (n, workers), so two calls
// with the same arguments cover identical ranges — the determinism the
// sharded reduce relies on. workers <= 1 (or n too small to split)
// degenerates to a plain body(0, n) call with no pool traffic.
//
// body must not call ParallelFor itself: shards run on pool workers,
// and a nested call could wait on a pool it is itself occupying.
func ParallelFor(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers > maxParallelWorkers {
		workers = maxParallelWorkers
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	pfPool.once.Do(startPFPool)
	done := doneTokens.Get().(chan struct{})
	// Post shards 1..workers-1 to the pool, run shard 0 inline.
	for i := 1; i < workers; i++ {
		lo, hi := i*n/workers, (i+1)*n/workers
		pfPool.tasks <- pfTask{body: body, lo: lo, hi: hi, done: done}
	}
	body(0, n/workers)
	for i := 1; i < workers; i++ {
		<-done
	}
	doneTokens.Put(done)
}

// ParallelAddAssign performs dst += src elementwise across `workers`
// cores. Contiguous disjoint shards of independent element adds keep
// the result bitwise identical to AddAssign.
func ParallelAddAssign(dst, src []float64, workers int) {
	if len(dst) != len(src) {
		panic("linalg: ParallelAddAssign length mismatch")
	}
	ParallelFor(len(dst), workers, func(lo, hi int) {
		AddAssign(dst[lo:hi], src[lo:hi])
	})
}
