package linalg

// BenchmarkLinalgKernels measures the dense BLAS-1 kernels MLlib's
// gradient inner loop hits millions of times per pass. Run with
//
//	go test -bench LinalgKernels -benchmem ./internal/linalg

import (
	"testing"
)

func BenchmarkLinalgKernels(b *testing.B) {
	const dim = 1 << 14 // 16384-dim weight vector
	x := make([]float64, dim)
	y := make([]float64, dim)
	for i := range x {
		x[i] = float64(i%13) * 0.5
		y[i] = float64(i%7) * 0.25
	}
	b.Run("DotDense", func(b *testing.B) {
		b.SetBytes(int64(16 * dim))
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += DotDense(x, y)
		}
		sinkF64 = s
	})
	b.Run("AxpyDense", func(b *testing.B) {
		b.SetBytes(int64(16 * dim))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AxpyDense(1e-9, x, y)
		}
	})
	b.Run("Scal", func(b *testing.B) {
		b.SetBytes(int64(8 * dim))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Scal(1.0, x)
		}
	})
	b.Run("AddAssign", func(b *testing.B) {
		b.SetBytes(int64(16 * dim))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			AddAssign(y, x)
		}
	})
	b.Run("Norm2", func(b *testing.B) {
		b.SetBytes(int64(8 * dim))
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += Norm2(x)
		}
		sinkF64 = s
	})
}

var sinkF64 float64
