package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randCSR builds a random labeled CSR matrix. density < 0 mixes empty,
// single-entry, and heavy rows to exercise degenerate shapes.
func randCSR(rng *rand.Rand, rows, dim int, density float64) *CSRMatrix {
	b := NewCSRBuilder(dim, rows, 0)
	for r := 0; r < rows; r++ {
		label := float64(rng.Intn(2))
		b.StartRow(label)
		d := density
		if d < 0 {
			switch rng.Intn(4) {
			case 0:
				d = 0 // empty row
			case 1:
				d = 1.0 / float64(dim) // ~single entry
			case 2:
				d = 0.9
			default:
				d = 0.2
			}
		}
		for j := 0; j < dim; j++ {
			if rng.Float64() < d {
				v := rng.NormFloat64()
				switch rng.Intn(16) {
				case 0:
					v = 1e16 // adversarial magnitudes: catch any reassociation
				case 1:
					v = 1e-16
				case 2:
					v = 0
				}
				if err := b.AppendEntry(int32(j), v); err != nil {
					panic(err)
				}
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	m.Part = rng.Intn(8)
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func csrEqual(t *testing.T, a, b *CSRMatrix) {
	t.Helper()
	if a.Part != b.Part || a.Dim != b.Dim || a.Rows() != b.Rows() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.Part, a.Dim, a.Rows(), a.NNZ(), b.Part, b.Dim, b.Rows(), b.NNZ())
	}
	for i := range a.RowOffsets {
		if a.RowOffsets[i] != b.RowOffsets[i] {
			t.Fatalf("offset %d: %d vs %d", i, a.RowOffsets[i], b.RowOffsets[i])
		}
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("index %d: %d vs %d", i, a.Indices[i], b.Indices[i])
		}
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("value %d: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
	if (a.Labels == nil) != (b.Labels == nil) {
		t.Fatalf("labels presence: %v vs %v", a.Labels != nil, b.Labels != nil)
	}
	for i := range a.Labels {
		if math.Float64bits(a.Labels[i]) != math.Float64bits(b.Labels[i]) {
			t.Fatalf("label %d: %v vs %v", i, a.Labels[i], b.Labels[i])
		}
	}
}

// TestCSRRoundTrip is the wire-format property test: encode → decode
// reproduces the matrix exactly, through the zero-copy aliasing path,
// the forced-copy (unaligned) path, and the serde Unmarshaler path.
func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ rows, dim int }{
		{0, 1}, {1, 1}, {1, 50}, {7, 13}, {100, 64}, {33, 1000},
	}
	for trial := 0; trial < 20; trial++ {
		s := shapes[trial%len(shapes)]
		m := randCSR(rng, s.rows, s.dim, -1)
		if trial%3 == 0 {
			m.Labels = nil // unlabeled variant
		}
		enc := AppendCSR(nil, m)
		if len(enc) != m.EncodedSize() {
			t.Fatalf("EncodedSize %d but wrote %d", m.EncodedSize(), len(enc))
		}

		// Aligned decode (zero-copy on little-endian hosts).
		got, n, err := DecodeCSR(enc)
		if err != nil {
			t.Fatalf("DecodeCSR: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		csrEqual(t, m, got)

		// Unaligned decode must fall back to copying, same result.
		mis := make([]byte, len(enc)+1)
		copy(mis[1:], enc)
		got2, n2, err := DecodeCSR(mis[1:])
		if err != nil {
			t.Fatalf("unaligned DecodeCSR: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("unaligned consumed %d of %d", n2, len(enc))
		}
		csrEqual(t, m, got2)

		// Serde path (always copies).
		var got3 CSRMatrix
		n3, err := got3.UnmarshalBinaryFrom(enc)
		if err != nil {
			t.Fatalf("UnmarshalBinaryFrom: %v", err)
		}
		if n3 != len(enc) {
			t.Fatalf("serde consumed %d of %d", n3, len(enc))
		}
		csrEqual(t, m, &got3)

		// Serde decode must not alias: mutating the frame afterwards
		// (pooled-buffer recycling) must not corrupt the matrix.
		if got3.NNZ() > 0 {
			want := got3.Values[0]
			for i := range enc {
				enc[i] ^= 0xFF
			}
			if math.Float64bits(got3.Values[0]) != math.Float64bits(want) {
				t.Fatal("serde decode aliased the input buffer")
			}
		}
	}
}

func TestCSRZeroCopyAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy decode requires a little-endian host")
	}
	rng := rand.New(rand.NewSource(7))
	m := randCSR(rng, 20, 40, 0.3)
	enc := AppendCSR(nil, m)
	got, _, err := DecodeCSR(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() == 0 {
		t.Fatal("want nonempty matrix")
	}
	// Flip a stored value byte-wise in the source buffer; the aliasing
	// decode must observe it.
	before := got.Values[0]
	off := (csrHeaderSize + 8*len(m.RowOffsets) + 4*len(m.Indices) + 7) &^ 7
	enc[off] ^= 0x01
	if math.Float64bits(got.Values[0]) == math.Float64bits(before) {
		t.Fatal("decode copied: expected zero-copy aliasing of src arenas")
	}
}

func TestCSRBuilderStreamingMatchesAppendRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 50, 30, -1)
	b := NewCSRBuilder(m.Dim, 0, 0)
	for r := 0; r < m.Rows(); r++ {
		row := m.Row(r)
		if err := b.AppendRow(m.Label(r), row.Indices, row.Values); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got.Part = m.Part
	csrEqual(t, m, got)
}

func TestCSRBuilderErrors(t *testing.T) {
	b := NewCSRBuilder(10, 0, 0)
	if err := b.AppendEntry(0, 1); err == nil {
		t.Fatal("AppendEntry with no open row should fail")
	}
	b.StartRow(1)
	if err := b.AppendEntry(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendEntry(3, 2); err == nil {
		t.Fatal("duplicate index should fail")
	}
	if err := b.AppendEntry(2, 2); err == nil {
		t.Fatal("decreasing index should fail")
	}
	if err := b.AppendEntry(10, 2); err == nil {
		t.Fatal("out-of-dim index should fail")
	}
}

func TestCSRBuilderInfersDim(t *testing.T) {
	b := NewCSRBuilder(0, 0, 0)
	if err := b.AppendRow(1, []int32{2, 17}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim != 18 {
		t.Fatalf("inferred dim %d, want 18", m.Dim)
	}
	// Empty input infers the minimum dim of 1.
	m2, err := NewCSRBuilder(0, 0, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dim != 1 || m2.Rows() != 0 {
		t.Fatalf("empty build: dim=%d rows=%d", m2.Dim, m2.Rows())
	}
}

func TestDecodeCSRRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randCSR(rng, 10, 20, 0.4)
	enc := AppendCSR(nil, m)
	cases := map[string]func([]byte){
		"short header": func(b []byte) {},
		"bad magic":    func(b []byte) { b[0] ^= 0xFF },
		"huge nnz":     func(b []byte) { b[32], b[33] = 0xFF, 0xFF },
		"neg rows":     func(b []byte) { b[31] = 0x80 },
	}
	for name, mut := range cases {
		buf := append([]byte(nil), enc...)
		if name == "short header" {
			buf = buf[:csrHeaderSize-1]
		}
		mut(buf)
		if _, _, err := DecodeCSR(buf); err == nil {
			t.Errorf("%s: want decode error", name)
		}
	}
	// Truncated body.
	if _, _, err := DecodeCSR(enc[:len(enc)-1]); err == nil {
		t.Error("truncated body: want decode error")
	}
}

func TestCSRCutsCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(rng, 200, 500, -1)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		rc := m.rowCutsInto(nil, nil, m.Rows(), workers)
		if len(rc) != workers+1 || rc[0] != 0 || rc[workers] != m.Rows() {
			t.Fatalf("row cuts %v don't cover [0,%d)", rc, m.Rows())
		}
		for i := 1; i < len(rc); i++ {
			if rc[i] < rc[i-1] {
				t.Fatalf("row cuts not monotone: %v", rc)
			}
		}
		cc := m.colCutsInto(nil, workers)
		if len(cc) != workers+1 || cc[0] != 0 || int(cc[workers]) != m.Dim {
			t.Fatalf("col cuts %v don't cover [0,%d)", cc, m.Dim)
		}
		for i := 1; i < len(cc); i++ {
			if cc[i] < cc[i-1] {
				t.Fatalf("col cuts not monotone: %v", cc)
			}
		}
	}
}
