package core

// Elastic chaos suite: collectives racing real membership churn. An
// executor killed mid-collective must be evicted and the aggregation
// retried whole against the new epoch; an executor joining mid-
// collective must not corrupt the in-flight ring (per-epoch comm
// groups make stale frames unroutable); and results must stay exact
// throughout. Runs under the race detector via `make test-chaos`.

import (
	"context"
	"testing"
	"time"

	"sparker/internal/metrics"
)

// TestChaosElasticKillMidTraining kills one executor while an
// aggregation loop runs. Every iteration must return the exact sum —
// before the kill on the 4-ring, across the kill via the elastic retry
// (or fallback when the epoch was already stable again), and after it
// on the 3-ring.
func TestChaosElasticKillMidTraining(t *testing.T) {
	const samples, dim = 300, 97
	ctx := testContext(t, 4, 2)
	r := vectorRDD(ctx, samples, 8)
	want := expectedVector(samples, dim)

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(15 * time.Millisecond)
		if err := ctx.KillExecutor(3); err != nil {
			t.Errorf("kill: %v", err)
		}
	}()

	for i := 0; i < 12; i++ {
		got, err := Aggregate(context.Background(), r, vecFuncs(dim),
			WithDeadline(500*time.Millisecond))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		requireExact(t, got, want)
	}
	<-killed
	if !ctx.AwaitReconfigured(1, 10*time.Second) {
		t.Fatal("kill never installed a new epoch")
	}
	if n := ctx.NumLiveExecutors(); n != 3 {
		t.Fatalf("live executors = %d after kill, want 3", n)
	}
	// And the shrunken ring keeps aggregating exactly.
	got, err := Aggregate(context.Background(), r, vecFuncs(dim))
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, got, want)
}

// TestChaosElasticKillAndReplace is the full cycle the tentpole exists
// for: kill, evict, replacement adopts the dead slot, and the very next
// collectives run on the restored-width ring — still exact.
func TestChaosElasticKillAndReplace(t *testing.T) {
	const samples, dim = 300, 97
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	want := expectedVector(samples, dim)

	e0 := ctx.MembershipEpoch()
	if err := ctx.KillExecutor(1); err != nil {
		t.Fatal(err)
	}
	if !ctx.AwaitReconfigured(e0, 10*time.Second) {
		t.Fatal("kill not detected")
	}
	got, err := Aggregate(context.Background(), r, vecFuncs(dim),
		WithDeadline(500*time.Millisecond))
	if err != nil {
		t.Fatalf("aggregate on survivors: %v", err)
	}
	requireExact(t, got, want)

	id, err := ctx.AddExecutor("replacement")
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("replacement adopted slot %d, want 1", id)
	}
	for i := 0; i < 3; i++ {
		got, err := Aggregate(context.Background(), r, vecFuncs(dim))
		if err != nil {
			t.Fatalf("post-replace iteration %d: %v", i, err)
		}
		requireExact(t, got, want)
	}
	if n := ctx.NumLiveExecutors(); n != 3 {
		t.Fatalf("live executors = %d after replace, want 3", n)
	}
}

// TestChaosElasticJoinMidCollective grows the cluster while an
// aggregation loop is in flight. The join's reconfiguration drains or
// overlaps the collectives; either way every result is exact, and once
// the new epoch installs, later collectives ride the wider ring. Stale
// epoch frames cannot reach the new ring — each epoch's collective
// group listens on its own addresses.
func TestChaosElasticJoinMidCollective(t *testing.T) {
	const samples, dim = 300, 97
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	want := expectedVector(samples, dim)

	joined := make(chan int, 1)
	go func() {
		time.Sleep(15 * time.Millisecond)
		id, err := ctx.AddExecutor("joiner")
		if err != nil {
			t.Errorf("join: %v", err)
		}
		joined <- id
	}()

	for i := 0; i < 12; i++ {
		got, err := Aggregate(context.Background(), r, vecFuncs(dim),
			WithDeadline(500*time.Millisecond))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		requireExact(t, got, want)
	}
	id := <-joined
	if id != 3 {
		t.Fatalf("joiner got slot %d, want growth slot 3", id)
	}
	if n := ctx.NumLiveExecutors(); n != 4 {
		t.Fatalf("live executors = %d after join, want 4", n)
	}
	got, err := Aggregate(context.Background(), r, vecFuncs(dim))
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, got, want)
}

// TestChaosElasticRetryClassification pins the decision boundary: a
// collective that fails BECAUSE membership changed must be retried
// whole (counter: elastic-retry), not silently merged from surviving
// IMM aggregators — the dead member's aggregator is gone, so the
// fallback would undercount.
func TestChaosElasticRetryClassification(t *testing.T) {
	const samples, dim = 400, 64
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	want := expectedVector(samples, dim)

	// Hammer aggregations while the kill lands, so at least one
	// collective observes the churn window.
	go func() {
		time.Sleep(5 * time.Millisecond)
		ctx.KillExecutor(2)
	}()
	for i := 0; i < 20; i++ {
		got, err := Aggregate(context.Background(), r, vecFuncs(dim),
			WithDeadline(300*time.Millisecond))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		requireExact(t, got, want)
	}
	if !ctx.AwaitReconfigured(1, 10*time.Second) {
		t.Fatal("kill never installed a new epoch")
	}
	// The critical invariant is exactness above. The retry counter is
	// timing-dependent (the kill can land between collectives), so only
	// report it.
	t.Logf("elastic retries: %d, ring fallbacks: %d",
		ctx.Metrics().Count(metrics.CounterElasticRetry),
		ctx.Metrics().Count(metrics.CounterRingFallback))
}
