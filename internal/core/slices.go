package core

// Slice segmentation helpers shared by MLlib aggregators and the
// benchmarks: the paper's splitA / concatA of Figure 7.

// SplitSlice returns segment i of n of a: the contiguous range
// [i*len/n, (i+1)*len/n). Segments cover the slice exactly and differ
// in length by at most one. The returned slice aliases a; callers that
// mutate segments (reduce-scatter does) receive fresh copies from
// SplitSliceCopy instead.
func SplitSlice[E any](a []E, i, n int) []E {
	if n <= 0 || i < 0 || i >= n {
		panic("core: SplitSlice index out of range")
	}
	lo := i * len(a) / n
	hi := (i + 1) * len(a) / n
	return a[lo:hi]
}

// SplitSliceCopy is SplitSlice with an owned copy, safe to mutate.
func SplitSliceCopy[E any](a []E, i, n int) []E {
	s := SplitSlice(a, i, n)
	out := make([]E, len(s))
	copy(out, s)
	return out
}

// ConcatSlices concatenates segments in order — the paper's concatA.
func ConcatSlices[E any](segs [][]E) []E {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	out := make([]E, 0, total)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// AddF64 merges b into a elementwise and returns a — the element-wise
// sum used by every aggregator in the paper's workloads.
func AddF64(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("core: AddF64 length mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
	return a
}
