package core

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"

	"sparker/internal/rdd"
	"sparker/internal/serde"
)

func testContext(t *testing.T, execs, cores int) *rdd.Context {
	t.Helper()
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             fmt.Sprintf("core-%s", t.Name()),
		NumExecutors:     execs,
		CoresPerExecutor: cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

// vectorRDD builds an RDD of int64 samples; the aggregator sums
// sample-dependent vectors of the given dimension, mimicking a gradient
// aggregation.
func vectorRDD(ctx *rdd.Context, samples, parts int) *rdd.RDD[int64] {
	return rdd.Generate(ctx, parts, func(part int) ([]int64, error) {
		lo := part * samples / parts
		hi := (part + 1) * samples / parts
		out := make([]int64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, int64(i))
		}
		return out, nil
	})
}

func expectedVector(samples, dim int) []float64 {
	want := make([]float64, dim)
	for i := 0; i < samples; i++ {
		for d := range want {
			want[d] += float64(i%7) + float64(d)
		}
	}
	return want
}

func vecZero(dim int) func() []float64 {
	return func() []float64 { return make([]float64, dim) }
}

func vecSeqOp(acc []float64, v int64) []float64 {
	for d := range acc {
		acc[d] += float64(v%7) + float64(d)
	}
	return acc
}

func vecsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSplitAggregateVectorSum(t *testing.T) {
	const samples, dim = 300, 97 // dim deliberately not divisible by segments
	for _, execs := range []int{1, 2, 3, 5} {
		for _, par := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("execs=%d/par=%d", execs, par), func(t *testing.T) {
				ctx := testContext(t, execs, 2)
				r := vectorRDD(ctx, samples, execs*3)
				got, err := SplitAggregate(r,
					vecZero(dim), vecSeqOp, AddF64,
					SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
					Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
					t.Fatalf("split aggregate result mismatch")
				}
			})
		}
	}
}

func TestTreeAggregateIMMVectorSum(t *testing.T) {
	const samples, dim = 200, 33
	for _, execs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("execs=%d", execs), func(t *testing.T) {
			ctx := testContext(t, execs, 2)
			r := vectorRDD(ctx, samples, execs*2+1)
			got, err := TreeAggregateIMM(r, vecZero(dim), vecSeqOp, AddF64)
			if err != nil {
				t.Fatal(err)
			}
			if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
				t.Fatalf("IMM aggregate result mismatch")
			}
		})
	}
}

func TestThreeStrategiesAgree(t *testing.T) {
	const samples, dim = 250, 41
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 9).Cache()

	tree, err := TreeAggregate(r, vecZero(dim), vecSeqOp, AddF64, 2)
	if err != nil {
		t.Fatal(err)
	}
	imm, err := TreeAggregateIMM(r, vecZero(dim), vecSeqOp, AddF64)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(tree, imm, 1e-9) || !vecsClose(tree, split, 1e-9) {
		t.Fatalf("strategies disagree:\ntree=%v\nimm=%v\nsplit=%v", tree[:3], imm[:3], split[:3])
	}
}

func TestSplitAggregateFewerPartitionsThanExecutors(t *testing.T) {
	// Executors with no data must still participate in the ring with a
	// zero aggregator.
	const samples, dim = 50, 16
	ctx := testContext(t, 4, 1)
	r := vectorRDD(ctx, samples, 2) // only 2 of 4 executors get tasks
	got, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("result wrong when some executors hold no partitions")
	}
}

func TestSplitAggregateDimSmallerThanSegments(t *testing.T) {
	// dim < P*N yields empty segments; concat must still reconstruct.
	const samples, dim = 40, 3
	ctx := testContext(t, 3, 1)
	r := vectorRDD(ctx, samples, 3)
	got, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("result wrong with empty segments")
	}
}

func TestSplitAggregateParallelismValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := vectorRDD(ctx, 10, 2)
	_, err := SplitAggregate(r, vecZero(4), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		Options{Parallelism: -1})
	if err == nil {
		t.Fatal("negative parallelism should fail")
	}
}

// The critical IMM recovery property: a task that merges its result
// into the shared aggregator and THEN fails must not double-count after
// the stage is resubmitted.
func TestIMMStageRetryDoesNotDoubleCount(t *testing.T) {
	const samples, dim = 120, 8
	ctx := testContext(t, 2, 2)
	var poisoned int32
	r := rdd.Generate(ctx, 4, func(part int) ([]int64, error) {
		out := make([]int64, 0, samples/4)
		for i := part * samples / 4; i < (part+1)*samples/4; i++ {
			out = append(out, int64(i))
		}
		return out, nil
	})
	// seqOp fails the first time partition 3's fold finishes — after
	// sibling tasks have already merged into the shared value.
	seqOp := func(acc []float64, v int64) []float64 {
		if v == int64(samples-1) && atomic.CompareAndSwapInt32(&poisoned, 0, 1) {
			panic("injected failure after partial stage progress")
		}
		return vecSeqOp(acc, v)
	}
	got, err := TreeAggregateIMM(r, vecZero(dim), seqOp, AddF64)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&poisoned) != 1 {
		t.Fatal("failure was never injected")
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatalf("stage retry double-counted: got %v want %v", got, expectedVector(samples, dim))
	}
}

func TestSplitAggregateStageRetry(t *testing.T) {
	const samples, dim = 80, 12
	ctx := testContext(t, 2, 2)
	var poisoned int32
	r := vectorRDD(ctx, samples, 4)
	seqOp := func(acc []float64, v int64) []float64 {
		if v == 0 && atomic.CompareAndSwapInt32(&poisoned, 0, 1) {
			panic("injected")
		}
		return vecSeqOp(acc, v)
	}
	got, err := SplitAggregate(r, vecZero(dim), seqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("split aggregate wrong after stage retry")
	}
}

// --- U ≠ V: the Figure-7 scenario ------------------------------------

// figAgg mirrors the paper's Agg: a struct of two arrays with an add
// method for samples. It is the aggregator type U.
type figAgg struct {
	Sum1, Sum2 []float64
}

func (a figAgg) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.AppendInt(dst, len(a.Sum1))
	for _, f := range a.Sum1 {
		dst = serde.AppendFloat64(dst, f)
	}
	dst = serde.AppendInt(dst, len(a.Sum2))
	for _, f := range a.Sum2 {
		dst = serde.AppendFloat64(dst, f)
	}
	return dst
}

func (a *figAgg) UnmarshalBinaryFrom(src []byte) (int, error) {
	n1 := serde.IntAt(src, 0)
	off := 8
	a.Sum1 = make([]float64, n1)
	for i := range a.Sum1 {
		a.Sum1[i] = serde.Float64At(src, off)
		off += 8
	}
	n2 := serde.IntAt(src, off)
	off += 8
	a.Sum2 = make([]float64, n2)
	for i := range a.Sum2 {
		a.Sum2[i] = serde.Float64At(src, off)
		off += 8
	}
	return off, nil
}

// figSeg mirrors AggSeg: the merge-only segment type V.
type figSeg struct {
	Sum1, Sum2 []float64
}

func (s figSeg) MarshalBinaryTo(dst []byte) []byte {
	return figAgg{s.Sum1, s.Sum2}.MarshalBinaryTo(dst)
}

func (s *figSeg) UnmarshalBinaryFrom(src []byte) (int, error) {
	var a figAgg
	n, err := a.UnmarshalBinaryFrom(src)
	s.Sum1, s.Sum2 = a.Sum1, a.Sum2
	return n, err
}

func init() {
	serde.RegisterSelf(figAgg{}, func() serde.Unmarshaler { return new(figAgg) })
	serde.RegisterSelf(figSeg{}, func() serde.Unmarshaler { return new(figSeg) })
}

func TestSplitAggregateStructOfArrays(t *testing.T) {
	const dim1, dim2, samples = 31, 17, 150
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)

	zero := func() figAgg {
		return figAgg{Sum1: make([]float64, dim1), Sum2: make([]float64, dim2)}
	}
	seqOp := func(a figAgg, v int64) figAgg {
		for i := range a.Sum1 {
			a.Sum1[i] += float64(v)
		}
		for i := range a.Sum2 {
			a.Sum2[i] += float64(v) * 2
		}
		return a
	}
	mergeOp := func(a, b figAgg) figAgg {
		AddF64(a.Sum1, b.Sum1)
		AddF64(a.Sum2, b.Sum2)
		return a
	}
	splitOp := func(a figAgg, i, n int) figSeg {
		return figSeg{
			Sum1: SplitSliceCopy(a.Sum1, i, n),
			Sum2: SplitSliceCopy(a.Sum2, i, n),
		}
	}
	reduceOp := func(a, b figSeg) figSeg {
		AddF64(a.Sum1, b.Sum1)
		AddF64(a.Sum2, b.Sum2)
		return a
	}
	concatOp := func(segs []figSeg) figSeg {
		s1 := make([][]float64, len(segs))
		s2 := make([][]float64, len(segs))
		for i, s := range segs {
			s1[i], s2[i] = s.Sum1, s.Sum2
		}
		return figSeg{Sum1: ConcatSlices(s1), Sum2: ConcatSlices(s2)}
	}

	got, err := SplitAggregate(r, zero, seqOp, mergeOp, splitOp, reduceOp, concatOp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(i)
	}
	want1 := make([]float64, dim1)
	want2 := make([]float64, dim2)
	for i := range want1 {
		want1[i] = sum
	}
	for i := range want2 {
		want2[i] = 2 * sum
	}
	if !vecsClose(got.Sum1, want1, 1e-9) || !vecsClose(got.Sum2, want2, 1e-9) {
		t.Fatal("struct-of-arrays split aggregation mismatch")
	}
}

// --- slice helper properties -------------------------------------------

func TestSplitConcatIdentity(t *testing.T) {
	f := func(vals []float64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		segs := make([][]float64, n)
		for i := 0; i < n; i++ {
			segs[i] = SplitSliceCopy(vals, i, n)
		}
		got := ConcatSlices(segs)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitSliceBalance(t *testing.T) {
	a := make([]float64, 101)
	const n = 7
	min, max := len(a), 0
	for i := 0; i < n; i++ {
		l := len(SplitSlice(a, i, n))
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("segment sizes unbalanced: min=%d max=%d", min, max)
	}
}

func TestSplitSlicePanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitSlice(%d,%d) should panic", c[0], c[1])
				}
			}()
			SplitSlice([]float64{1}, c[0], c[1])
		}()
	}
}

func TestQuickSplitVsTreeAgree(t *testing.T) {
	ctx := testContext(t, 3, 2)
	f := func(seed int64, dimRaw, partsRaw uint8) bool {
		dim := int(dimRaw%50) + 1
		parts := int(partsRaw%6) + 1
		r := rdd.Generate(ctx, parts, func(part int) ([]int64, error) {
			out := make([]int64, 20)
			s := seed + int64(part)
			for i := range out {
				s = s*6364136223846793005 + 1442695040888963407
				out[i] = s % 100
			}
			return out, nil
		})
		tree, err := TreeAggregate(r, vecZero(dim), vecSeqOp, AddF64, 2)
		if err != nil {
			return false
		}
		split, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
			SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{Parallelism: 2})
		if err != nil {
			return false
		}
		return vecsClose(tree, split, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestConcatSlicesEmpty(t *testing.T) {
	if got := ConcatSlices[float64](nil); len(got) != 0 {
		t.Fatalf("ConcatSlices(nil) = %v", got)
	}
	if got := ConcatSlices([][]float64{{}, {1}, {}}); !reflect.DeepEqual(got, []float64{1}) {
		t.Fatalf("got %v", got)
	}
}

func TestSplitParallelMatchesSerial(t *testing.T) {
	agg := make([]float64, 103)
	for i := range agg {
		agg[i] = float64(i) * 1.5
	}
	for _, workers := range []int{1, 2, 4, 16, 200} {
		segs := splitParallel(agg, 12, workers, SplitSliceCopy[float64])
		got := ConcatSlices(segs)
		if len(got) != len(agg) {
			t.Fatalf("workers=%d: wrong total length %d", workers, len(got))
		}
		for i := range agg {
			if got[i] != agg[i] {
				t.Fatalf("workers=%d: mismatch at %d", workers, i)
			}
		}
	}
	// Single segment short-circuits.
	one := splitParallel(agg, 1, 8, SplitSliceCopy[float64])
	if len(one) != 1 || len(one[0]) != len(agg) {
		t.Fatal("single-segment split wrong")
	}
}
