package core

// Aggregate is the unified aggregation entry point: one call that
// selects the reduction strategy (tree, tree+IMM, split, allreduce),
// carries per-step communication deadlines into the ring collectives,
// and — when a ring collective fails with a classified peer error —
// automatically degrades to a tree-shaped gather over the surviving
// block-manager paths. The legacy entry points (TreeAggregate,
// TreeAggregateIMM, SplitAggregate, SplitAllReduce, AutoSplitAggregate)
// are thin deprecated wrappers over it.
//
// Fault model. The ring stage runs with MaxAttempts=1: resubmitting one
// ring member alone cannot succeed, so the classified failure
// (comm.ErrPeerTimeout, comm.ErrPeerDown) is surfaced promptly instead
// of burning the retry budget. Because the IMM stage has already left
// one merged aggregator per executor in the mutable object manager, the
// fallback needs no recompute: each executor republishes its aggregator
// as a block, and the driver performs the same serial merge
// TreeAggregateIMM would — correct whenever the task transport and
// block manager survive the ring fault (e.g. a severed or silent PDR
// link). Degradations are observable: the metrics counters
// metrics.CounterPeerFailure and metrics.CounterRingFallback are bumped
// and a marker event is written to the history log.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sparker/internal/collective"
	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/sched"
	"sparker/internal/serde"
	"sparker/internal/trace"
)

// ErrMembershipChanged classifies a collective failure whose cause was
// a membership reconfiguration (an executor died or left mid-ring and
// the driver installed a new epoch). Aggregate retries such failures
// once, whole, against the new epoch — the surviving-path fallback is
// only sound when the executor set is unchanged, since a dead member's
// IMM aggregator is gone. Aliases rdd.ErrMembershipChanged so the
// classification survives the task result frame (the wire codec maps
// the sentinel to a status byte and re-attaches it driver-side).
var ErrMembershipChanged = rdd.ErrMembershipChanged

// elasticRetryWait bounds how long a classified ring failure waits for
// the suspected membership reconfiguration to install before concluding
// the executor set is stable (and degrading to the tree fallback
// instead). Ctrl-connection eviction is near-instant, so churn-caused
// failures see the new epoch well inside this window.
const elasticRetryWait = 500 * time.Millisecond

// Strategy selects the reduction an Aggregate call runs.
type Strategy int

const (
	// StrategySplit is Sparker's split aggregation over the parallel
	// directed ring (§3.1) — the default.
	StrategySplit Strategy = iota
	// StrategyTree is vanilla Spark treeAggregate: combiner stages and a
	// serial driver merge, every hop serialized.
	StrategyTree
	// StrategyIMM is tree aggregation with in-memory merge: one
	// serialized aggregator per executor, serial driver merge (§3.2).
	StrategyIMM
	// StrategyAllReduce is split aggregation ending in an allgather, so
	// the reduced aggregate stays resident on every executor (§6).
	StrategyAllReduce
	// StrategyAuto picks a strategy from cluster geometry: StrategyIMM on
	// a single executor (a ring of one reduces nothing), StrategySplit
	// otherwise.
	StrategyAuto
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategySplit:
		return "split"
	case StrategyTree:
		return "tree"
	case StrategyIMM:
		return "imm"
	case StrategyAllReduce:
		return "allreduce"
	case StrategyAuto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultStepDeadline bounds each ring collective step when the caller
// does not choose a deadline. Generous enough for any healthy step, yet
// it converts a silent peer into a classified error instead of a hang.
const DefaultStepDeadline = 60 * time.Second

// AggOptions tunes Aggregate. Build it with the With* functional
// options; the zero value of each field selects the documented default.
type AggOptions struct {
	// Strategy picks the reduction (default StrategySplit).
	Strategy Strategy
	// Depth is the tree depth for StrategyTree (default 2).
	Depth int
	// Parallelism is the PDR channel count for the ring strategies
	// (default: the context's RingParallelism).
	Parallelism int
	// StepDeadline bounds each ring collective step. Zero selects
	// DefaultStepDeadline; a negative value disables the deadline
	// (restoring the hang-on-silent-peer behaviour of the seed).
	StepDeadline time.Duration
	// NoFallback disables the automatic ring→tree degradation on a
	// classified peer failure, surfacing the error instead.
	NoFallback bool
	// KeepKey, for StrategyAllReduce, stores the reduced result in every
	// executor's mutable object manager under this key.
	KeepKey string
	// ChunkBytes sets the pipelined ring collectives' chunk size. Zero
	// (the default) lets the collective layer pick — SPARKER_CHUNK_BYTES
	// if set, else an adaptive size seeded from the step histograms; a
	// negative value disables chunking (legacy single-frame steps).
	ChunkBytes int
	// Tenant names the scheduler fair-share account charged for the
	// aggregation's stages (empty: the default tenant). Multi-tenant
	// drivers tag each client's training loop so slot-time is split by
	// the configured weights.
	Tenant string
	// Compress selects a wire codec for the ring stage (default: none,
	// which is byte-identical to the pre-codec wire format). Requires an
	// AggFuncs.Ops override whose segment type exposes a float64 view
	// (e.g. collective.F64Ops). When Compress.ErrorFeedback is set with a
	// nil State, each executor keeps one residual store per aggregation
	// shape in its mutable object manager so residuals persist across
	// iterations of an optimizer loop.
	Compress collective.Compression
}

// AggOption mutates AggOptions.
type AggOption func(*AggOptions)

// WithStrategy selects the reduction strategy.
func WithStrategy(s Strategy) AggOption {
	return func(o *AggOptions) { o.Strategy = s }
}

// WithDepth sets the tree depth for StrategyTree. Non-positive values
// select the default (2).
func WithDepth(depth int) AggOption {
	return func(o *AggOptions) { o.Depth = depth }
}

// WithParallelism sets the PDR channel count for the ring strategies.
// Zero selects the context's RingParallelism; negative values are
// rejected by Aggregate.
func WithParallelism(p int) AggOption {
	return func(o *AggOptions) { o.Parallelism = p }
}

// WithDeadline sets the per-step communication deadline for the ring
// strategies. Zero selects DefaultStepDeadline; negative disables.
func WithDeadline(d time.Duration) AggOption {
	return func(o *AggOptions) { o.StepDeadline = d }
}

// WithFallback enables or disables the automatic ring→tree fallback on
// a classified peer failure (enabled by default).
func WithFallback(enabled bool) AggOption {
	return func(o *AggOptions) { o.NoFallback = !enabled }
}

// WithKeepKey keeps the StrategyAllReduce result resident on every
// executor under key.
func WithKeepKey(key string) AggOption {
	return func(o *AggOptions) { o.KeepKey = key }
}

// WithChunkBytes fixes the pipelined ring chunk size (bytes) for this
// aggregation. Zero defers to SPARKER_CHUNK_BYTES or the adaptive
// controller; negative disables chunking.
func WithChunkBytes(n int) AggOption {
	return func(o *AggOptions) { o.ChunkBytes = n }
}

// WithTenant charges the aggregation's stages to the named scheduler
// fair-share tenant (see sched.TenantConfig). Empty restores the
// default account.
func WithTenant(name string) AggOption {
	return func(o *AggOptions) { o.Tenant = name }
}

// WithCompression selects a wire codec for the ring stage. opts carries
// the codec parameters (top-k ratio, error feedback, optional explicit
// residual state); its Codec field is overwritten by codec so the
// common call sites read WithCompression(collective.CodecFP16,
// collective.Compression{}). CodecNone restores the exact dense wire
// format.
func WithCompression(codec collective.Codec, opts collective.Compression) AggOption {
	return func(o *AggOptions) {
		opts.Codec = codec
		o.Compress = opts
	}
}

// AggFuncs carries the user callbacks of the split aggregation
// interface (Figure 6). T is the element type, U the aggregator, V the
// aggregator segment; U and V must be serde-encodable where they cross
// executor boundaries.
type AggFuncs[T, U, V any] struct {
	// Zero returns a fresh aggregator (must not alias previous calls).
	Zero func() U
	// SeqOp folds one element into an aggregator.
	SeqOp func(U, T) U
	// MergeOp merges two aggregators (IMM intra-executor merge, driver
	// merge of the tree strategies and of the fallback gather).
	MergeOp func(U, U) U
	// SplitOp returns segment i of n from an aggregator; all ranks must
	// agree on the segmentation, and SplitOp(u, 0, 1) must be the whole
	// aggregator viewed as a segment (how the tree strategies and the
	// fallback convert U to V).
	SplitOp func(u U, i, n int) V
	// ReduceOp merges two aggregator segments.
	ReduceOp func(V, V) V
	// ConcatOp reassembles the ordered reduced segments.
	ConcatOp func([]V) V
	// Ops, when non-nil, replaces the generic serde-backed collective
	// operations for the ring stage. Supplying ops with the chunked fast
	// path (fixed stride, Fuse/Encoded hooks — e.g. collective.F64Ops for
	// []float64 segments) enables zero-decode chunk reduction and is a
	// prerequisite for wire compression (AggOptions.Compress).
	Ops *collective.Ops[V]
}

func (f *AggFuncs[T, U, V]) validate(s Strategy) error {
	if f.Zero == nil || f.SeqOp == nil || f.MergeOp == nil {
		return fmt.Errorf("core: Aggregate(%v) requires Zero, SeqOp and MergeOp", s)
	}
	if f.SplitOp == nil {
		return fmt.Errorf("core: Aggregate(%v) requires SplitOp", s)
	}
	if s == StrategySplit || s == StrategyAllReduce {
		if f.ReduceOp == nil || f.ConcatOp == nil {
			return fmt.Errorf("core: Aggregate(%v) requires ReduceOp and ConcatOp", s)
		}
	}
	return nil
}

// Aggregate reduces r with fns under the chosen options and returns the
// final aggregate as a segment-typed value (for the tree strategies and
// the fallback path this is SplitOp(result, 0, 1)).
//
// ctx bounds the communication of the ring strategies: it is the parent
// of every per-step deadline context, so cancelling it aborts in-flight
// collectives with a classified error. It does not preempt executor
// compute.
func Aggregate[T, U, V any](ctx context.Context, r *rdd.RDD[T], fns AggFuncs[T, U, V], opts ...AggOption) (res V, retErr error) {
	var zv V
	rc := r.Context()
	o := AggOptions{}
	for _, f := range opts {
		f(&o)
	}
	if o.Depth <= 0 {
		o.Depth = 2
	}
	if o.Parallelism == 0 {
		o.Parallelism = rc.RingParallelism()
	}
	if o.Parallelism < 1 {
		return zv, fmt.Errorf("core: Parallelism must be >= 1, got %d", o.Parallelism)
	}
	if o.StepDeadline == 0 {
		o.StepDeadline = DefaultStepDeadline
	}
	strategy := o.Strategy
	if strategy == StrategyAuto {
		if rc.NumLiveExecutors() == 1 {
			strategy = StrategyIMM
		} else {
			strategy = StrategySplit
		}
	}
	if err := fns.validate(strategy); err != nil {
		return zv, err
	}
	if o.Compress.Codec != collective.CodecNone && fns.Ops == nil {
		return zv, fmt.Errorf("core: WithCompression(%v) requires AggFuncs.Ops with a float64 view (e.g. collective.F64Ops)", o.Compress.Codec)
	}

	// One "aggregate" span per call, parenting every stage it submits
	// (and the fallback span on degradation). Parent comes from ctx so
	// mllib iteration spans stitch above it.
	tr := rc.Tracer()
	_, parentSC := trace.FromContext(ctx)
	span := tr.StartSpan("aggregate", parentSC)
	span.SetAttr("strategy", strategy.String())
	defer func() { span.EndErr(retErr) }()
	ctx = trace.WithSpan(ctx, span)

	switch strategy {
	case StrategyTree:
		u, err := rdd.TreeAggregate(r, fns.Zero, fns.SeqOp, fns.MergeOp, rdd.AggregateOptions{Depth: o.Depth})
		if err != nil {
			return zv, err
		}
		return fns.SplitOp(u, 0, 1), nil
	case StrategyIMM:
		u, err := treeAggregateIMM(ctx, r, o.Tenant, fns.Zero, fns.SeqOp, fns.MergeOp)
		if err != nil {
			return zv, err
		}
		return fns.SplitOp(u, 0, 1), nil
	case StrategySplit:
		return ringAggregateElastic(ctx, r, fns, o, false)
	case StrategyAllReduce:
		return ringAggregateElastic(ctx, r, fns, o, true)
	default:
		return zv, fmt.Errorf("core: unknown strategy %v", o.Strategy)
	}
}

// isPeerFailure reports whether err is a classified collective failure
// the recovery paths can act on: a peer stopped answering
// (comm.ErrPeerTimeout), its transport died (comm.ErrPeerDown), or the
// scheduler lost the executor outright (sched.ErrExecutorLost).
func isPeerFailure(err error) bool {
	return errors.Is(err, comm.ErrPeerTimeout) || errors.Is(err, comm.ErrPeerDown) ||
		errors.Is(err, sched.ErrExecutorLost)
}

// maxElasticRetries bounds how many times a churn-broken collective is
// re-run whole. Each retry requires a fresh ErrMembershipChanged
// classification — which itself requires an observed epoch change — so
// the loop is bounded by actual churn events; the cap guards against a
// cluster reconfiguring faster than it can complete one collective.
const maxElasticRetries = 3

// ringAggregateElastic wraps ringAggregate with the elastic retry: a
// collective that failed because the membership epoch moved underneath
// it is re-run whole (fresh op id, fresh IMM stage, the new epoch's
// ring) against the reconfigured cluster, up to maxElasticRetries
// times — back-to-back churn (an eviction immediately followed by a
// replacement join) can break two attempts in a row. Any failure with
// stable membership surfaces normally.
func ringAggregateElastic[T, U, V any](ctx context.Context, r *rdd.RDD[T], fns AggFuncs[T, U, V], o AggOptions, allGather bool) (V, error) {
	rc := r.Context()
	res, err := ringAggregate(ctx, r, fns, o, allGather)
	for retry := 0; retry < maxElasticRetries && err != nil && errors.Is(err, ErrMembershipChanged); retry++ {
		rc.RecordMarker(metrics.CounterElasticRetry,
			fmt.Sprintf("retrying collective against epoch %d: %v", rc.MembershipEpoch(), err))
		res, err = ringAggregate(ctx, r, fns, o, allGather)
	}
	return res, err
}

// ringAggregate runs the split (and, with allGather, allreduce)
// strategy: IMM stage, then a statically placed ring stage, then either
// the driver gather (split) or the rank-0 copy (allreduce). On a
// classified ring failure with fallback enabled it degrades to
// fallbackGather.
func ringAggregate[T, U, V any](ctx context.Context, r *rdd.RDD[T], fns AggFuncs[T, U, V], o AggOptions, allGather bool) (V, error) {
	var zv V
	rc := r.Context()
	kind := "split"
	if allGather {
		kind = "allreduce"
	}
	opID := rc.NewOpID()
	epoch0 := rc.MembershipEpoch()
	prefix := fmt.Sprintf("%s/%d/", kind, opID)
	if o.KeepKey == "" {
		defer cleanupIMM(rc, prefix)
	} else {
		// Keep the result objects; clean only the aggregation state.
		defer cleanupIMM(rc, prefix+"agg")
	}

	tr, aggSC := trace.FromContext(ctx)

	// Stage 1: reduced-result stage (IMM) → one aggregator per executor.
	start := time.Now()
	if err := runIMMStage(r, prefix, aggSC, o.Tenant, fns.Zero, fns.SeqOp, fns.MergeOp); err != nil {
		return zv, err
	}
	rc.RecordPhase(metrics.PhaseAggCompute, time.Since(start), "IMM reduced-result stage")

	start = time.Now()
	defer func() { rc.RecordPhase(metrics.PhaseAggReduce, time.Since(start), kind+" reduce stage") }()

	// Stage 2: SpawnRDD — exactly one task per executor, statically
	// placed, running the ring collective with per-step deadlines.
	out, ringErr := runRingStage(ctx, rc, opID, prefix, fns, o, allGather)
	if ringErr == nil {
		return out, nil
	}
	if errors.Is(ringErr, ErrMembershipChanged) {
		// The stage itself detected the churn (stale ring geometry).
		// Executors swap endpoints before the driver installs the epoch,
		// so wait briefly for the install — a retry planned against the
		// still-stale view would fail the same way.
		rc.AwaitReconfigured(epoch0, elasticRetryWait)
		return zv, ringErr
	}
	// comm.ErrClosed from a ring task means the task's collective
	// endpoint was closed under it — which during churn is exactly the
	// atomic endpoint swap of a reconfiguration. It is not a peer
	// failure (the fallback would be pointless on a closed endpoint),
	// but it is retry-eligible when the epoch confirms the churn.
	if !isPeerFailure(ringErr) && !errors.Is(ringErr, comm.ErrClosed) {
		return zv, ringErr
	}
	// Classified peer failure. If the membership epoch moved (or moves
	// within the grace window — ctrl-connection eviction is racing this
	// very error), the failure was churn: the surviving-path fallback is
	// unsound (the departed member's IMM aggregator is gone), so classify
	// for the whole-collective retry against the new epoch instead.
	if rc.AwaitReconfigured(epoch0, elasticRetryWait) {
		return zv, fmt.Errorf("core: %s ring failed across epochs %d->%d: %v: %w",
			kind, epoch0, rc.MembershipEpoch(), ringErr, ErrMembershipChanged)
	}
	if o.NoFallback || errors.Is(ringErr, comm.ErrClosed) {
		// Stable epoch: a closed endpoint here is a genuine local
		// shutdown, not churn — surface it rather than degrade.
		return zv, ringErr
	}

	// Ring→tree degradation: the IMM aggregators are still resident, so
	// gather them over the block manager and merge serially like
	// TreeAggregateIMM — no recompute, survives a dead PDR link.
	rc.RecordMarker(metrics.CounterPeerFailure, ringErr.Error())
	rc.RecordMarker(metrics.CounterRingFallback,
		fmt.Sprintf("%s aggregation degraded to tree gather: %v", kind, ringErr))
	// The degradation itself is a span: its duration is the measured
	// recovery cost and its attrs carry the classified cause — the
	// trace-level view the chaos suites assert on.
	fb := tr.StartSpan("ring-fallback", aggSC)
	fb.SetAttr("strategy", kind)
	fb.SetAttr("cause", ringErr.Error())
	acc, err := fallbackGather(rc, prefix, fns.Zero, fns.MergeOp)
	if err != nil {
		wrapped := fmt.Errorf("core: tree fallback after ring failure (%v): %w", ringErr, err)
		fb.EndErr(wrapped)
		return zv, wrapped
	}
	result := fns.SplitOp(acc, 0, 1)
	if allGather && o.KeepKey != "" {
		if err := replicateResult(rc, o.KeepKey, result); err != nil {
			wrapped := fmt.Errorf("core: tree fallback after ring failure (%v): %w", ringErr, err)
			fb.EndErr(wrapped)
			return zv, wrapped
		}
	}
	fb.SetAttr("recovered", "true")
	fb.End()
	return result, nil
}

// runRingStage submits the collective stage: one gang-scheduled task
// per executor in ring-rank order, MaxAttempts=1 with WaitAll
// (resubmitting one ring member cannot succeed, and recovery must not
// start while peers still drive the ring), each task splitting the
// shared IMM aggregator and running ring reduce-scatter (plus allgather
// for allreduce) under the configured per-step deadline. The op id
// tags every ring frame as this collective's epoch, so residue from an
// earlier aborted collective is discarded instead of reduced.
func runRingStage[T, U, V any](ctx context.Context, rc *rdd.Context, opID int64, prefix string, fns AggFuncs[T, U, V], o AggOptions, allGather bool) (V, error) {
	var zv V
	sctx := collective.WithEpoch(ctx, uint32(opID))
	if o.StepDeadline > 0 {
		sctx = collective.WithStepDeadline(sctx, o.StepDeadline)
	}
	if o.ChunkBytes != 0 {
		sctx = collective.WithChunkBytes(sctx, o.ChunkBytes)
	}
	// Ring size is the LIVE executor count of the installed epoch, not
	// the slot-table width: dead slots hold no rank in the epoch's ring.
	nExec := rc.NumLiveExecutors()
	nSegs := o.Parallelism * nExec
	ops := serdeOps[V](fns.ReduceOp)
	if fns.Ops != nil {
		ops = *fns.Ops
	}
	kind := "ring-reduce-scatter"
	if allGather {
		kind = "ring-allreduce"
	}
	untrack := rc.TrackCollective(rdd.CollectiveInfo{
		OpID:   opID,
		Kind:   kind,
		Tenant: o.Tenant,
		Tasks:  nExec,
		Epoch:  uint32(opID),
		Detail: prefix,
	})
	defer untrack()
	keepKey := o.KeepKey
	comp := o.Compress
	// Residual state for error feedback lives in the executor's mutable
	// object manager under a shape-keyed name that is NOT derived from
	// the op id: successive aggregations of the same shape (an optimizer
	// loop) must see the same residuals, or error feedback degenerates to
	// plain lossy quantization. The per-(channel, segment) map inside the
	// state self-resizes on dimension change, so shape reuse is safe.
	efStateKey := fmt.Sprintf("collective/ef/%s/p%d/s%d", comp.Codec, o.Parallelism, nSegs)
	_, aggSC := trace.FromContext(ctx)
	// Topology-aware gang stage: task i lands on the executor holding
	// ring rank i (any bijection works — the Fn keys off ec.Rank, and the
	// driver decodes payloads by embedded segment index — but rank order
	// makes traces line up with ring position). Gang admission holds the
	// whole stage until every executor has a free core: a partially
	// launched ring would deadlock against its unlaunched peers while
	// burning slots. Gang stages are never speculated — a duplicate ring
	// member would shift IMM state and corrupt the epoch.
	payloads, err := rc.RunJob(rdd.JobSpec{
		Tenant:      o.Tenant,
		Tasks:       nExec,
		Policy:      rc.TopologyPolicy(),
		Gang:        true,
		MaxAttempts: 1,
		WaitAll:     true,
		TraceParent: aggSC,
		Fn: func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
			// Re-root the collective's telemetry under this task's span and
			// this executor's registry: ring-step spans nest under the task,
			// step histograms land executor-locally. The executor's core
			// budget also rides along so the chunked decode-reduce knows how
			// wide it may shard.
			cctx := collective.WithCores(ec.Instrument(sctx), ec.Cores)
			if comp.Codec != collective.CodecNone {
				spec := comp
				if spec.ErrorFeedback && spec.State == nil {
					spec.State = ec.MutObjs.GetOrCreate(efStateKey, func() any {
						return collective.NewCompressionState()
					}).Value().(*collective.CompressionState)
				}
				cctx = collective.WithCompression(cctx, spec)
			}
			// Stale-geometry guard: the stage was planned against an
			// installed epoch's live count, but executors refresh their
			// collective endpoint per dispatch — a reconfiguration landing
			// between planning and launch would run an nExec-wide plan on a
			// different-width ring. Bail with the churn classification so
			// the whole collective retries against the new epoch.
			if got := ec.Comm.Size(); got != nExec {
				return nil, fmt.Errorf("core: ring width changed under the stage (planned %d ranks, endpoint has %d): %w",
					nExec, got, ErrMembershipChanged)
			}
			agg := sharedAgg(ec, prefix+"agg", fns.Zero)
			segs := splitParallel(agg, nSegs, ec.Cores, fns.SplitOp)
			owned, err := collective.RingReduceScatter(cctx, ec.Comm, segs, o.Parallelism, ops)
			if err != nil {
				return nil, err
			}
			if !allGather {
				return encodeOwned(owned, ops)
			}
			all, err := collective.RingAllGather(cctx, ec.Comm, owned, o.Parallelism, ops)
			if err != nil {
				return nil, err
			}
			result := fns.ConcatOp(all)
			if keepKey != "" {
				ec.MutObjs.GetOrCreate(keepKey, func() any { return result }).
					Update(func(any) any { return result })
			}
			// Only ring rank 0 returns the payload; everyone else acks.
			if ec.Rank != 0 {
				return nil, nil
			}
			return serde.Encode(nil, result)
		},
	})
	if err != nil {
		return zv, err
	}

	if allGather {
		for _, p := range payloads {
			if len(p) == 0 {
				continue
			}
			v, _, err := serde.Decode(p)
			if err != nil {
				return zv, err
			}
			return v.(V), nil
		}
		return zv, fmt.Errorf("core: allreduce produced no driver copy")
	}

	// Gather: order the segments by global index and concatenate.
	segs := make([]V, nSegs)
	seen := make([]bool, nSegs)
	for _, p := range payloads {
		if err := decodeOwned(p, segs, seen, ops); err != nil {
			return zv, err
		}
	}
	for i, ok := range seen {
		if !ok {
			return zv, fmt.Errorf("core: segment %d missing after reduce-scatter", i)
		}
	}
	return fns.ConcatOp(segs), nil
}

// fallbackGather is the surviving-path tree reduction: every executor
// republishes its resident IMM aggregator as a block, and the driver
// fetches and merges them serially in executor order — the exact merge
// TreeAggregateIMM performs, so the degraded result is identical to the
// tree result.
func fallbackGather[U any](rc *rdd.Context, prefix string, zero func() U, mergeOp func(U, U) U) (U, error) {
	var zu U
	blockID := prefix + "fallback"
	_, err := rc.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		wire, err := serde.Encode(nil, sharedAgg(ec, prefix+"agg", zero))
		if err != nil {
			return nil, err
		}
		ec.Store.PutLocal(blockID, wire)
		return nil, nil
	})
	if err != nil {
		return zu, err
	}
	defer rc.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		ec.Store.DeletePrefix(blockID)
		return nil, nil
	})
	acc := zero()
	for _, i := range rc.LiveExecutors() {
		wire, err := rc.DriverStore().FetchFrom(rc.ExecutorStoreName(i), blockID)
		if err != nil {
			return zu, err
		}
		v, _, err := serde.Decode(wire)
		if err != nil {
			return zu, err
		}
		acc = mergeOp(acc, v.(U))
	}
	rc.DriverStore().DeletePrefix(blockID)
	return acc, nil
}

// replicateResult pushes the fallback allreduce result back onto every
// executor under key, round-tripping through serde so executors do not
// alias one value.
func replicateResult[V any](rc *rdd.Context, key string, result V) error {
	wire, err := serde.Encode(nil, result)
	if err != nil {
		return err
	}
	_, err = rc.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		v, _, err := serde.Decode(wire)
		if err != nil {
			return nil, err
		}
		ec.MutObjs.GetOrCreate(key, func() any { return v }).
			Update(func(any) any { return v })
		return nil, nil
	})
	return err
}
