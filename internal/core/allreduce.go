package core

// SplitAllReduce extends split aggregation past the paper: §6 notes
// that once reduction is fixed, "the driver overhead becomes the new
// bottleneck" because every iteration still gathers the aggregator to
// the driver and redistributes the updated model. SplitAllReduce
// replaces the gather with a ring allreduce (reduce-scatter +
// allgather, both enabled by the same splittable interface), leaving
// the fully reduced aggregate resident on every executor; only one
// executor ships a copy back so the driver can observe it. Iterative
// algorithms can then read the previous result executor-side instead
// of round-tripping it through the driver.

import (
	"fmt"
	"time"

	"sparker/internal/collective"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/serde"
)

// AllReduceOptions tunes SplitAllReduce.
type AllReduceOptions struct {
	// Parallelism is the PDR channel count (default: context setting).
	Parallelism int
	// KeepKey, when non-empty, stores the reduced result in every
	// executor's mutable object manager under this key so later stages
	// can read it locally.
	KeepKey string
}

// SplitAllReduce aggregates like SplitAggregate but ends with every
// executor holding concatOp of the fully reduced segments. The driver
// receives the copy returned by ring rank 0.
func SplitAllReduce[T, U, V any](
	r *rdd.RDD[T],
	zero func() U,
	seqOp func(U, T) U,
	mergeOp func(U, U) U,
	splitOp func(u U, i, n int) V,
	reduceOp func(V, V) V,
	concatOp func([]V) V,
	opts AllReduceOptions,
) (V, error) {
	var zv V
	ctx := r.Context()
	par := opts.Parallelism
	if par == 0 {
		par = ctx.RingParallelism()
	}
	if par < 1 {
		return zv, fmt.Errorf("core: Parallelism must be >= 1, got %d", par)
	}
	prefix := fmt.Sprintf("allreduce/%d/", ctx.NewOpID())
	if opts.KeepKey == "" {
		defer cleanupIMM(ctx, prefix)
	} else {
		// Keep the result objects; clean only the aggregation state.
		defer cleanupIMM(ctx, prefix+"agg")
	}

	start := time.Now()
	if err := runIMMStage(r, prefix, zero, seqOp, mergeOp); err != nil {
		return zv, err
	}
	ctx.RecordPhase(metrics.PhaseAggCompute, time.Since(start), "IMM reduced-result stage")

	start = time.Now()
	defer func() { ctx.RecordPhase(metrics.PhaseAggReduce, time.Since(start), "allreduce stage") }()

	nExec := ctx.NumExecutors()
	nSegs := par * nExec
	ops := serdeOps[V](reduceOp)
	keepKey := opts.KeepKey
	payloads, err := ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		agg := sharedAgg(ec, prefix+"agg", zero)
		segs := splitParallel(agg, nSegs, ec.Cores, splitOp)
		owned, err := collective.RingReduceScatter(ec.Comm, segs, par, ops)
		if err != nil {
			return nil, err
		}
		all, err := collective.RingAllGather(ec.Comm, owned, par, ops)
		if err != nil {
			return nil, err
		}
		result := concatOp(all)
		if keepKey != "" {
			ec.MutObjs.GetOrCreate(keepKey, func() any { return result }).
				Update(func(any) any { return result })
		}
		// Only ring rank 0 returns the payload; everyone else acks.
		if ec.Rank != 0 {
			return nil, nil
		}
		return serde.Encode(nil, result)
	})
	if err != nil {
		return zv, err
	}
	for _, p := range payloads {
		if len(p) == 0 {
			continue
		}
		v, _, err := serde.Decode(p)
		if err != nil {
			return zv, err
		}
		return v.(V), nil
	}
	return zv, fmt.Errorf("core: allreduce produced no driver copy")
}
