package core

// SplitAllReduce extends split aggregation past the paper: §6 notes
// that once reduction is fixed, "the driver overhead becomes the new
// bottleneck" because every iteration still gathers the aggregator to
// the driver and redistributes the updated model. SplitAllReduce
// replaces the gather with a ring allreduce (reduce-scatter +
// allgather, both enabled by the same splittable interface), leaving
// the fully reduced aggregate resident on every executor; only one
// executor ships a copy back so the driver can observe it. Iterative
// algorithms can then read the previous result executor-side instead
// of round-tripping it through the driver.

import (
	"context"

	"sparker/internal/rdd"
)

// AllReduceOptions tunes SplitAllReduce.
//
// Deprecated: use the AggOption functional options of Aggregate
// (WithParallelism, WithKeepKey).
type AllReduceOptions struct {
	// Parallelism is the PDR channel count (default: context setting).
	Parallelism int
	// KeepKey, when non-empty, stores the reduced result in every
	// executor's mutable object manager under this key so later stages
	// can read it locally.
	KeepKey string
}

// SplitAllReduce aggregates like SplitAggregate but ends with every
// executor holding concatOp of the fully reduced segments. The driver
// receives the copy returned by ring rank 0.
//
// Deprecated: use Aggregate with WithStrategy(StrategyAllReduce).
func SplitAllReduce[T, U, V any](
	r *rdd.RDD[T],
	zero func() U,
	seqOp func(U, T) U,
	mergeOp func(U, U) U,
	splitOp func(u U, i, n int) V,
	reduceOp func(V, V) V,
	concatOp func([]V) V,
	opts AllReduceOptions,
) (V, error) {
	return Aggregate(context.Background(), r, AggFuncs[T, U, V]{
		Zero:     zero,
		SeqOp:    seqOp,
		MergeOp:  mergeOp,
		SplitOp:  splitOp,
		ReduceOp: reduceOp,
		ConcatOp: concatOp,
	}, WithStrategy(StrategyAllReduce), WithParallelism(opts.Parallelism), WithKeepKey(opts.KeepKey))
}
