package core

// Automatic split aggregation — the paper's future-work idea realized:
// "compiler techniques may be used to analyze the aggregator to
// generate split aggregation code without user-defined code" (§6).
// Instead of a compiler pass, Derive inspects the aggregator type with
// reflection and synthesizes mergeOp/splitOp/reduceOp/concatOp for any
// aggregator that is a []float64, a []int64, or a struct whose exported
// fields are those slice types or float64/int64 scalars — which covers
// every MLlib aggregator in the paper (Figure 7's Agg is exactly a
// struct of two float64 arrays).

import (
	"context"
	"fmt"
	"reflect"

	"sparker/internal/rdd"
	"sparker/internal/serde"
)

// AutoSegment is the aggregator-segment type V produced by derived
// splitOps: the i-th contiguous slice of every slice field, plus (in
// segment 0 only) the scalar fields.
type AutoSegment struct {
	F64     [][]float64
	I64     [][]int64
	ScalarF []float64
	ScalarI []int64
}

// MarshalBinaryTo implements serde.Marshaler.
func (s AutoSegment) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.AppendInt(dst, len(s.F64))
	for _, v := range s.F64 {
		dst = serde.AppendInt(dst, len(v))
		for _, f := range v {
			dst = serde.AppendFloat64(dst, f)
		}
	}
	dst = serde.AppendInt(dst, len(s.I64))
	for _, v := range s.I64 {
		dst = serde.AppendInt(dst, len(v))
		for _, x := range v {
			dst = serde.AppendInt(dst, int(x))
		}
	}
	dst = serde.AppendInt(dst, len(s.ScalarF))
	for _, f := range s.ScalarF {
		dst = serde.AppendFloat64(dst, f)
	}
	dst = serde.AppendInt(dst, len(s.ScalarI))
	for _, x := range s.ScalarI {
		dst = serde.AppendInt(dst, int(x))
	}
	return dst
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (s *AutoSegment) UnmarshalBinaryFrom(src []byte) (int, error) {
	off := 0
	readInt := func() int {
		v := serde.IntAt(src, off)
		off += 8
		return v
	}
	nf := readInt()
	s.F64 = make([][]float64, nf)
	for i := range s.F64 {
		n := readInt()
		s.F64[i] = make([]float64, n)
		for j := range s.F64[i] {
			s.F64[i][j] = serde.Float64At(src, off)
			off += 8
		}
	}
	ni := readInt()
	s.I64 = make([][]int64, ni)
	for i := range s.I64 {
		n := readInt()
		s.I64[i] = make([]int64, n)
		for j := range s.I64[i] {
			s.I64[i][j] = int64(serde.IntAt(src, off))
			off += 8
		}
	}
	s.ScalarF = make([]float64, readInt())
	for i := range s.ScalarF {
		s.ScalarF[i] = serde.Float64At(src, off)
		off += 8
	}
	s.ScalarI = make([]int64, readInt())
	for i := range s.ScalarI {
		s.ScalarI[i] = int64(serde.IntAt(src, off))
		off += 8
	}
	return off, nil
}

func init() {
	serde.RegisterSelf(AutoSegment{}, func() serde.Unmarshaler { return new(AutoSegment) })
}

// fieldKind classifies supported aggregator fields.
type fieldKind int

const (
	kindF64Slice fieldKind = iota
	kindI64Slice
	kindF64Scalar
	kindI64Scalar
)

// plan is the analyzed structure of an aggregator type.
type plan struct {
	// wholeSlice is set when U itself is []float64 or []int64.
	wholeSlice bool
	wholeKind  fieldKind
	fields     []planField
}

type planField struct {
	index int // struct field index
	kind  fieldKind
	name  string
}

// analyze validates U's shape and produces the derivation plan.
func analyze(t reflect.Type) (plan, error) {
	var p plan
	switch {
	case t == reflect.TypeOf([]float64(nil)):
		p.wholeSlice, p.wholeKind = true, kindF64Slice
		return p, nil
	case t == reflect.TypeOf([]int64(nil)):
		p.wholeSlice, p.wholeKind = true, kindI64Slice
		return p, nil
	case t.Kind() == reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return p, fmt.Errorf("core: Derive: field %s.%s is unexported; derived aggregators need exported fields", t.Name(), f.Name)
			}
			pf := planField{index: i, name: f.Name}
			switch f.Type {
			case reflect.TypeOf([]float64(nil)):
				pf.kind = kindF64Slice
			case reflect.TypeOf([]int64(nil)):
				pf.kind = kindI64Slice
			case reflect.TypeOf(float64(0)):
				pf.kind = kindF64Scalar
			case reflect.TypeOf(int64(0)):
				pf.kind = kindI64Scalar
			default:
				return p, fmt.Errorf("core: Derive: field %s.%s has unsupported type %v (want []float64, []int64, float64 or int64)", t.Name(), f.Name, f.Type)
			}
			p.fields = append(p.fields, pf)
		}
		if len(p.fields) == 0 {
			return p, fmt.Errorf("core: Derive: %v has no fields to aggregate", t)
		}
		return p, nil
	default:
		return p, fmt.Errorf("core: Derive: unsupported aggregator type %v (want a slice or a struct of slices/scalars)", t)
	}
}

// DerivedOps is the synthesized callback set for SplitAggregate.
// Concat produces the reassembled segment container (the V the
// interface returns, per Figure 6); Rebuild converts it back into the
// aggregator type U.
type DerivedOps[U any] struct {
	Merge   func(U, U) U
	Split   func(U, int, int) AutoSegment
	Reduce  func(AutoSegment, AutoSegment) AutoSegment
	Concat  func([]AutoSegment) AutoSegment
	Rebuild func(AutoSegment) U
}

// Derive analyzes U (via a value from zero) and synthesizes the split
// aggregation callbacks.
func Derive[U any](zero func() U) (DerivedOps[U], error) {
	var ops DerivedOps[U]
	proto := zero()
	p, err := analyze(reflect.TypeOf(proto))
	if err != nil {
		return ops, err
	}

	ops.Merge = func(a, b U) U {
		va, vb := reflect.ValueOf(&a).Elem(), reflect.ValueOf(b)
		if p.wholeSlice {
			// U is itself a slice: elementwise add into a's backing array.
			addSliceValue(va, vb, p.wholeKind)
			return a
		}
		for _, f := range p.fields {
			fa, fb := va.Field(f.index), vb.Field(f.index)
			switch f.kind {
			case kindF64Slice, kindI64Slice:
				addSliceValue(fa, fb, f.kind)
			case kindF64Scalar:
				fa.SetFloat(fa.Float() + fb.Float())
			case kindI64Scalar:
				fa.SetInt(fa.Int() + fb.Int())
			}
		}
		return a
	}

	ops.Split = func(u U, i, n int) AutoSegment {
		var seg AutoSegment
		v := reflect.ValueOf(u)
		if p.wholeSlice {
			appendSliceSegment(&seg, v, p.wholeKind, i, n)
			return seg
		}
		for _, f := range p.fields {
			fv := v.Field(f.index)
			switch f.kind {
			case kindF64Slice, kindI64Slice:
				appendSliceSegment(&seg, fv, f.kind, i, n)
			case kindF64Scalar:
				if i == 0 {
					seg.ScalarF = append(seg.ScalarF, fv.Float())
				}
			case kindI64Scalar:
				if i == 0 {
					seg.ScalarI = append(seg.ScalarI, fv.Int())
				}
			}
		}
		return seg
	}

	ops.Reduce = func(a, b AutoSegment) AutoSegment {
		for i := range a.F64 {
			AddF64(a.F64[i], b.F64[i])
		}
		for i := range a.I64 {
			for j := range a.I64[i] {
				a.I64[i][j] += b.I64[i][j]
			}
		}
		for i := range a.ScalarF {
			a.ScalarF[i] += b.ScalarF[i]
		}
		for i := range a.ScalarI {
			a.ScalarI[i] += b.ScalarI[i]
		}
		return a
	}

	ops.Concat = func(segs []AutoSegment) AutoSegment {
		if len(segs) == 0 {
			return AutoSegment{}
		}
		var out AutoSegment
		nf, ni := len(segs[0].F64), len(segs[0].I64)
		for fi := 0; fi < nf; fi++ {
			parts := make([][]float64, len(segs))
			for k, s := range segs {
				parts[k] = s.F64[fi]
			}
			out.F64 = append(out.F64, ConcatSlices(parts))
		}
		for ii := 0; ii < ni; ii++ {
			parts := make([][]int64, len(segs))
			for k, s := range segs {
				parts[k] = s.I64[ii]
			}
			out.I64 = append(out.I64, ConcatSlices(parts))
		}
		// Scalars live only in segment 0 (already globally reduced).
		out.ScalarF = segs[0].ScalarF
		out.ScalarI = segs[0].ScalarI
		return out
	}

	ops.Rebuild = func(seg AutoSegment) U {
		out := zero()
		v := reflect.ValueOf(&out).Elem()
		if p.wholeSlice {
			if p.wholeKind == kindF64Slice {
				v.Set(reflect.ValueOf(seg.F64[0]))
			} else {
				v.Set(reflect.ValueOf(seg.I64[0]))
			}
			return out
		}
		fi, ii, sf, si := 0, 0, 0, 0
		for _, f := range p.fields {
			fv := v.Field(f.index)
			switch f.kind {
			case kindF64Slice:
				fv.Set(reflect.ValueOf(seg.F64[fi]))
				fi++
			case kindI64Slice:
				fv.Set(reflect.ValueOf(seg.I64[ii]))
				ii++
			case kindF64Scalar:
				fv.SetFloat(seg.ScalarF[sf])
				sf++
			case kindI64Scalar:
				fv.SetInt(seg.ScalarI[si])
				si++
			}
		}
		return out
	}

	return ops, nil
}

func addSliceValue(dst, src reflect.Value, kind fieldKind) {
	switch kind {
	case kindF64Slice:
		AddF64(dst.Interface().([]float64), src.Interface().([]float64))
	case kindI64Slice:
		a := dst.Interface().([]int64)
		b := src.Interface().([]int64)
		if len(a) != len(b) {
			panic("core: derived merge length mismatch")
		}
		for i := range a {
			a[i] += b[i]
		}
	}
}

func appendSliceSegment(seg *AutoSegment, v reflect.Value, kind fieldKind, i, n int) {
	switch kind {
	case kindF64Slice:
		seg.F64 = append(seg.F64, SplitSliceCopy(v.Interface().([]float64), i, n))
	case kindI64Slice:
		seg.I64 = append(seg.I64, SplitSliceCopy(v.Interface().([]int64), i, n))
	}
}

// AutoSplitAggregate is SplitAggregate with every splitting callback
// derived from U's structure: the user supplies only what
// treeAggregate already required (zero and seqOp), and split
// aggregation comes for free. This realizes the paper's §6 vision of
// removing the extra programming effort the interface trades for
// performance.
//
// Deprecated: use Aggregate with DerivedFuncs, or keep this wrapper for
// the common flat-aggregator case.
func AutoSplitAggregate[T, U any](r *rdd.RDD[T], zero func() U, seqOp func(U, T) U, opts Options) (U, error) {
	var zu U
	fns, rebuild, err := DerivedFuncs[T](zero, seqOp)
	if err != nil {
		return zu, err
	}
	seg, err := Aggregate(context.Background(), r, fns, WithParallelism(opts.Parallelism))
	if err != nil {
		return zu, err
	}
	return rebuild(seg), nil
}

// DerivedFuncs builds the AggFuncs for Aggregate from U's structure the
// way AutoSplitAggregate does, returning the callback set plus the
// rebuild function that converts the final AutoSegment back into a U.
func DerivedFuncs[T, U any](zero func() U, seqOp func(U, T) U) (AggFuncs[T, U, AutoSegment], func(AutoSegment) U, error) {
	ops, err := Derive(zero)
	if err != nil {
		return AggFuncs[T, U, AutoSegment]{}, nil, err
	}
	return AggFuncs[T, U, AutoSegment]{
		Zero:     zero,
		SeqOp:    seqOp,
		MergeOp:  ops.Merge,
		SplitOp:  ops.Split,
		ReduceOp: ops.Reduce,
		ConcatOp: ops.Concat,
	}, ops.Rebuild, nil
}
