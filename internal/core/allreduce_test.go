package core

import (
	"fmt"
	"testing"

	"sparker/internal/rdd"
)

func TestSplitAllReduceMatchesSplitAggregate(t *testing.T) {
	const samples, dim = 240, 53
	for _, execs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("execs=%d", execs), func(t *testing.T) {
			ctx := testContext(t, execs, 2)
			r := vectorRDD(ctx, samples, execs*3).Cache()
			gather, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
				SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
			if err != nil {
				t.Fatal(err)
			}
			allred, err := SplitAllReduce(r, vecZero(dim), vecSeqOp, AddF64,
				SplitSliceCopy[float64], AddF64, ConcatSlices[float64], AllReduceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !vecsClose(gather, allred, 1e-9) {
				t.Fatal("allreduce result differs from gather-based split aggregation")
			}
		})
	}
}

func TestSplitAllReduceKeepsResultOnExecutors(t *testing.T) {
	const samples, dim = 100, 24
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	want, err := SplitAllReduce(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		AllReduceOptions{KeepKey: "model/current"})
	if err != nil {
		t.Fatal(err)
	}
	// Every executor must hold an identical resident copy.
	payloads, err := ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		obj := ec.MutObjs.Get("model/current")
		if obj == nil {
			return nil, fmt.Errorf("executor %d holds no resident result", ec.ID)
		}
		v := obj.Value().([]float64)
		if !vecsClose(v, want, 1e-9) {
			return nil, fmt.Errorf("executor %d copy diverges", ec.ID)
		}
		return []byte{1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 3 {
		t.Fatalf("checked %d executors", len(payloads))
	}
}

func TestSplitAllReduceValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := vectorRDD(ctx, 10, 2)
	_, err := SplitAllReduce(r, vecZero(4), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		AllReduceOptions{Parallelism: -2})
	if err == nil {
		t.Fatal("negative parallelism should fail")
	}
}

func TestSplitAllReduceIterative(t *testing.T) {
	// Two consecutive rounds: the second round's seqOp could consume
	// the resident model; here we just assert both rounds stay correct
	// and the resident key updates.
	const samples, dim = 60, 10
	ctx := testContext(t, 2, 2)
	r := vectorRDD(ctx, samples, 4).Cache()
	first, err := SplitAllReduce(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		AllReduceOptions{KeepKey: "w"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := SplitAllReduce(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64],
		AllReduceOptions{KeepKey: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(first, second, 1e-9) {
		t.Fatal("identical rounds disagree")
	}
	_, err = ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		v := ec.MutObjs.Get("w").Value().([]float64)
		if !vecsClose(v, second, 1e-9) {
			return nil, fmt.Errorf("stale resident model on executor %d", ec.ID)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
