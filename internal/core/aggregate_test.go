package core

import (
	"context"
	"testing"
	"time"

	"sparker/internal/rdd"
)

func vecFuncs(dim int) AggFuncs[int64, []float64, []float64] {
	return AggFuncs[int64, []float64, []float64]{
		Zero:     vecZero(dim),
		SeqOp:    vecSeqOp,
		MergeOp:  AddF64,
		SplitOp:  SplitSliceCopy[float64],
		ReduceOp: AddF64,
		ConcatOp: ConcatSlices[float64],
	}
}

// TestAggregateStrategiesAgree runs every strategy through the unified
// entry point and checks they all produce the same vector sum.
func TestAggregateStrategiesAgree(t *testing.T) {
	const samples, dim = 300, 97
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	want := expectedVector(samples, dim)

	for _, s := range []Strategy{StrategySplit, StrategyTree, StrategyIMM, StrategyAllReduce, StrategyAuto} {
		got, err := Aggregate(context.Background(), r, vecFuncs(dim), WithStrategy(s))
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if !vecsClose(got, want, 1e-9) {
			t.Fatalf("strategy %v: wrong vector sum", s)
		}
	}
}

// TestAggregateDefaultIsSplit checks the zero-option call matches the
// deprecated SplitAggregate wrapper bit for bit.
func TestAggregateDefaultIsSplit(t *testing.T) {
	const samples, dim = 200, 64
	ctx := testContext(t, 2, 2)
	r := vectorRDD(ctx, samples, 4)

	unified, err := Aggregate(context.Background(), r, vecFuncs(dim))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unified) != len(legacy) {
		t.Fatalf("length mismatch: %d vs %d", len(unified), len(legacy))
	}
	for i := range unified {
		if unified[i] != legacy[i] {
			t.Fatalf("element %d: unified %v != legacy %v", i, unified[i], legacy[i])
		}
	}
}

// TestAggregateAutoSingleExecutor: a ring of one reduces nothing, so
// Auto must pick IMM and still produce the right answer.
func TestAggregateAutoSingleExecutor(t *testing.T) {
	const samples, dim = 100, 16
	ctx := testContext(t, 1, 2)
	r := vectorRDD(ctx, samples, 3)
	got, err := Aggregate(context.Background(), r, vecFuncs(dim), WithStrategy(StrategyAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("wrong vector sum")
	}
}

// TestAggregateValidation covers option and callback validation.
func TestAggregateValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := vectorRDD(ctx, 10, 2)

	if _, err := Aggregate(context.Background(), r, vecFuncs(8), WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism should fail")
	}
	fns := vecFuncs(8)
	fns.ReduceOp = nil
	if _, err := Aggregate(context.Background(), r, fns); err == nil {
		t.Fatal("missing ReduceOp should fail for split")
	}
	if _, err := Aggregate(context.Background(), r, AggFuncs[int64, []float64, []float64]{}); err == nil {
		t.Fatal("empty AggFuncs should fail")
	}
}

// TestAggregateKeepKey checks the allreduce result stays resident on
// every executor under the chosen key.
func TestAggregateKeepKey(t *testing.T) {
	const samples, dim = 120, 24
	ctx := testContext(t, 2, 2)
	r := vectorRDD(ctx, samples, 4)
	want := expectedVector(samples, dim)

	got, err := Aggregate(context.Background(), r, vecFuncs(dim),
		WithStrategy(StrategyAllReduce), WithKeepKey("model/latest"))
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, want, 1e-9) {
		t.Fatal("wrong driver copy")
	}
	payloads, err := ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		obj := ec.MutObjs.Get("model/latest")
		if obj == nil {
			return []byte{0}, nil
		}
		var resident []float64
		obj.Read(func(v any) { resident, _ = v.([]float64) })
		if vecsClose(resident, want, 1e-9) {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if len(p) != 1 || p[0] != 1 {
			t.Fatalf("executor %d: resident result missing or wrong", i)
		}
	}
}

// TestAggregateDeadlineOptionHarmless: an explicit short deadline on a
// healthy ring must not break anything.
func TestAggregateDeadlineOptionHarmless(t *testing.T) {
	const samples, dim = 200, 48
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)
	got, err := Aggregate(context.Background(), r, vecFuncs(dim), WithDeadline(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("wrong vector sum")
	}
}
