package core

// Chaos suite for the unified aggregation API: split aggregation over a
// fault-injecting transport must either ride the fault out (delay) or
// degrade to the tree fallback and still return the exact aggregate —
// and with fallback disabled, surface a classified error instead of
// hanging.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sparker/internal/comm"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/trace"
	"sparker/internal/transport"
)

// chaosContext boots a cluster whose transport injects the given
// faults. The ring listeners of context name live at
// comm/<name>/ring/<rank>, so rules can target the PDR while leaving
// task dispatch and the block manager healthy — the paper's fault
// argument: Spark survives what MPI cannot.
func chaosContext(t *testing.T, name string, execs, cores, par int, rules ...*transport.FaultRule) *rdd.Context {
	t.Helper()
	net := transport.NewFaulty(transport.NewMem(), 7, rules...)
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             name,
		NumExecutors:     execs,
		CoresPerExecutor: cores,
		RingParallelism:  par,
		Network:          net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

func ringPrefixMatch(name string) func(transport.Addr) bool {
	prefix := "comm/" + name + "/ring/"
	return func(a transport.Addr) bool { return strings.HasPrefix(string(a), prefix) }
}

// requireExact fails unless got equals want bit for bit — the data is
// integer-valued, so every merge order yields the identical float64s.
func requireExact(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestChaosSplitAggregateKillFallsBack kills one executor's inbound
// ring links on the first data message: the collective fails with a
// classified error, the fallback gathers the resident IMM aggregators
// over the block manager, and the result is exact. A second aggregation
// on the now-degraded ring must also come back exact.
func TestChaosSplitAggregateKillFallsBack(t *testing.T) {
	const samples, dim = 300, 97
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("p=%d", par), func(t *testing.T) {
			name := fmt.Sprintf("chaos-kill-%d", par)
			victim := transport.Addr(fmt.Sprintf("comm/%s/ring/%d", name, 1))
			ctx := chaosContext(t, name, 3, 2, par, &transport.FaultRule{
				Match:     func(a transport.Addr) bool { return a == victim },
				Kind:      transport.FaultKill,
				AfterMsgs: 1, // ring handshakes pass at boot; first step dies
			})
			r := vectorRDD(ctx, samples, 6)
			want := expectedVector(samples, dim)

			for round := 1; round <= 2; round++ {
				got, err := Aggregate(context.Background(), r, vecFuncs(dim),
					WithDeadline(500*time.Millisecond))
				if err != nil {
					t.Fatalf("round %d: fallback should mask the kill: %v", round, err)
				}
				requireExact(t, got, want)
				if n := ctx.Metrics().Count(metrics.CounterRingFallback); n != int64(round) {
					t.Fatalf("round %d: ring-fallback counter = %d, want %d", round, n, round)
				}
			}
			if n := ctx.Metrics().Count(metrics.CounterPeerFailure); n < 2 {
				t.Fatalf("peer-failure counter = %d, want >= 2", n)
			}
		})
	}
}

// TestChaosSplitAggregateDropFallsBack drops 100% of ring data: every
// ring task classifies a timeout within the step deadline, and the
// fallback still produces the exact aggregate.
func TestChaosSplitAggregateDropFallsBack(t *testing.T) {
	const samples, dim = 300, 97
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("p=%d", par), func(t *testing.T) {
			name := fmt.Sprintf("chaos-drop-%d", par)
			ctx := chaosContext(t, name, 3, 2, par, &transport.FaultRule{
				Match:     ringPrefixMatch(name),
				Kind:      transport.FaultDrop,
				AfterMsgs: 1, // handshakes pass, all data vanishes
			})
			r := vectorRDD(ctx, samples, 6)

			start := time.Now()
			got, err := Aggregate(context.Background(), r, vecFuncs(dim),
				WithDeadline(300*time.Millisecond))
			if err != nil {
				t.Fatalf("fallback should mask total message loss: %v", err)
			}
			requireExact(t, got, expectedVector(samples, dim))
			if ctx.Metrics().Count(metrics.CounterRingFallback) == 0 {
				t.Fatal("expected a recorded ring fallback")
			}
			// IMM + classification + fallback must stay well under the
			// no-deadline hang this suite exists to prevent.
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("aggregation took %v", elapsed)
			}
		})
	}
}

// TestChaosSplitAggregateDelaySucceeds slows every ring message down
// 10×: the ring is still healthy, so no fallback may trigger and the
// result is exact.
func TestChaosSplitAggregateDelaySucceeds(t *testing.T) {
	const samples, dim = 300, 97
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("p=%d", par), func(t *testing.T) {
			name := fmt.Sprintf("chaos-delay-%d", par)
			ctx := chaosContext(t, name, 3, 2, par, &transport.FaultRule{
				Match: ringPrefixMatch(name),
				Kind:  transport.FaultDelay,
				Delay: 10 * time.Millisecond,
			})
			r := vectorRDD(ctx, samples, 6)
			got, err := Aggregate(context.Background(), r, vecFuncs(dim),
				WithDeadline(2*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			requireExact(t, got, expectedVector(samples, dim))
			if n := ctx.Metrics().Count(metrics.CounterRingFallback); n != 0 {
				t.Fatalf("delay must not trigger fallback, counter = %d", n)
			}
		})
	}
}

// TestChaosNoFallbackSurfacesClassifiedError: with WithFallback(false)
// the classified error must cross the executor→driver wire intact so
// callers can dispatch on errors.Is.
func TestChaosNoFallbackSurfacesClassifiedError(t *testing.T) {
	const samples, dim = 120, 32
	name := "chaos-nofb"
	ctx := chaosContext(t, name, 3, 2, 2, &transport.FaultRule{
		Match:     ringPrefixMatch(name),
		Kind:      transport.FaultDrop,
		AfterMsgs: 1,
	})
	r := vectorRDD(ctx, samples, 4)
	_, err := Aggregate(context.Background(), r, vecFuncs(dim),
		WithFallback(false), WithDeadline(250*time.Millisecond))
	if err == nil {
		t.Fatal("expected a classified failure with fallback disabled")
	}
	if !errors.Is(err, comm.ErrPeerTimeout) {
		t.Fatalf("want ErrPeerTimeout through the task wire, got %v", err)
	}
	if n := ctx.Metrics().Count(metrics.CounterRingFallback); n != 0 {
		t.Fatalf("fallback disabled but counter = %d", n)
	}
}

// TestChaosFallbackSpan ties the chaos suite to the trace tentpole:
// a fault-triggered degradation must appear in the trace as a
// "ring-fallback" span parented on the aggregate span, annotated with
// the classified cause, and its duration is the measured cost of the
// degradation (classification + block-manager gather).
func TestChaosFallbackSpan(t *testing.T) {
	const samples, dim = 300, 97
	scenarios := []struct {
		kind transport.FaultKind
		tag  string
	}{
		{transport.FaultKill, "kill"},
		{transport.FaultDrop, "drop"},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.tag, func(t *testing.T) {
			name := "chaos-span-" + sc.tag
			rule := &transport.FaultRule{
				Match:     ringPrefixMatch(name),
				Kind:      sc.kind,
				AfterMsgs: 1,
			}
			if sc.kind == transport.FaultKill {
				victim := transport.Addr(fmt.Sprintf("comm/%s/ring/%d", name, 1))
				rule.Match = func(a transport.Addr) bool { return a == victim }
			}
			exp := &trace.MemExporter{}
			net := transport.NewFaulty(transport.NewMem(), 7, rule)
			ctx, err := rdd.NewContext(rdd.Config{
				Name:             name,
				NumExecutors:     3,
				CoresPerExecutor: 2,
				RingParallelism:  2,
				Network:          net,
				Tracer:           trace.New(exp),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ctx.Close()
			r := vectorRDD(ctx, samples, 6)

			got, err := Aggregate(context.Background(), r, vecFuncs(dim),
				WithDeadline(400*time.Millisecond))
			if err != nil {
				t.Fatalf("fallback should mask the %s: %v", sc.tag, err)
			}
			requireExact(t, got, expectedVector(samples, dim))

			aggs := exp.Named("aggregate")
			if len(aggs) != 1 {
				t.Fatalf("%d aggregate spans, want 1", len(aggs))
			}
			fbs := exp.Named("ring-fallback")
			if len(fbs) != 1 {
				t.Fatalf("%d ring-fallback spans, want 1", len(fbs))
			}
			fb := fbs[0]
			if fb.ParentID != aggs[0].SpanID || fb.TraceID != aggs[0].TraceID {
				t.Errorf("fallback span parent %x/trace %x, want under aggregate %x/%x",
					fb.ParentID, fb.TraceID, aggs[0].SpanID, aggs[0].TraceID)
			}
			if fb.Duration() <= 0 {
				t.Error("fallback span has no measured degradation duration")
			}
			if cause, ok := fb.Attr("cause"); !ok || cause == "" {
				t.Error("fallback span missing the classified cause attr")
			}
			if rec, _ := fb.Attr("recovered"); rec != "true" {
				t.Errorf("fallback span recovered attr = %q, want true", rec)
			}
			// The degradation happened mid-aggregate: its duration is a
			// sub-interval of the aggregate span.
			if fb.Duration() > aggs[0].Duration() {
				t.Errorf("fallback lasted %v, longer than its aggregate %v",
					fb.Duration(), aggs[0].Duration())
			}
		})
	}
}

// TestChaosAllReduceKillFallsBack: the allreduce strategy degrades the
// same way, and the KeepKey result replicated by the fallback matches
// the driver copy on every executor.
func TestChaosAllReduceKillFallsBack(t *testing.T) {
	const samples, dim = 200, 48
	name := "chaos-ar-kill"
	victim := transport.Addr(fmt.Sprintf("comm/%s/ring/%d", name, 2))
	ctx := chaosContext(t, name, 3, 2, 2, &transport.FaultRule{
		Match:     func(a transport.Addr) bool { return a == victim },
		Kind:      transport.FaultKill,
		AfterMsgs: 1,
	})
	r := vectorRDD(ctx, samples, 6)
	want := expectedVector(samples, dim)

	got, err := Aggregate(context.Background(), r, vecFuncs(dim),
		WithStrategy(StrategyAllReduce), WithKeepKey("model/chaos"),
		WithDeadline(500*time.Millisecond))
	if err != nil {
		t.Fatalf("fallback should mask the kill: %v", err)
	}
	requireExact(t, got, want)
	if ctx.Metrics().Count(metrics.CounterRingFallback) == 0 {
		t.Fatal("expected a recorded ring fallback")
	}
	payloads, err := ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		obj := ec.MutObjs.Get("model/chaos")
		if obj == nil {
			return []byte{0}, nil
		}
		var resident []float64
		obj.Read(func(v any) { resident, _ = v.([]float64) })
		if len(resident) != len(want) {
			return []byte{0}, nil
		}
		for i := range resident {
			if resident[i] != want[i] {
				return []byte{0}, nil
			}
		}
		return []byte{1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if len(p) != 1 || p[0] != 1 {
			t.Fatalf("executor %d: replicated KeepKey result missing or wrong", i)
		}
	}
}
