package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// gradAgg mimics an MLlib aggregator: gradient array + loss + count.
type gradAgg struct {
	Grad  []float64
	Hist  []int64
	Loss  float64
	Count int64
}

func TestDeriveRejectsUnsupported(t *testing.T) {
	type bad1 struct{ M map[string]int }
	if _, err := Derive(func() bad1 { return bad1{} }); err == nil {
		t.Error("map field should be rejected")
	}
	type bad2 struct{ s []float64 } //nolint:unused
	if _, err := Derive(func() bad2 { return bad2{} }); err == nil {
		t.Error("unexported field should be rejected")
	}
	type bad3 struct{ S string }
	if _, err := Derive(func() bad3 { return bad3{} }); err == nil {
		t.Error("string field should be rejected")
	}
	type empty struct{}
	if _, err := Derive(func() empty { return empty{} }); err == nil {
		t.Error("empty struct should be rejected")
	}
	if _, err := Derive(func() int { return 0 }); err == nil {
		t.Error("plain int should be rejected")
	}
}

func TestDerivedMergeSplitConcatRoundTrip(t *testing.T) {
	zero := func() gradAgg {
		return gradAgg{Grad: make([]float64, 13), Hist: make([]int64, 5)}
	}
	ops, err := Derive(zero)
	if err != nil {
		t.Fatal(err)
	}
	u := zero()
	for i := range u.Grad {
		u.Grad[i] = float64(i) * 1.5
	}
	for i := range u.Hist {
		u.Hist[i] = int64(i * 7)
	}
	u.Loss, u.Count = 3.25, 11

	const n = 4
	segs := make([]AutoSegment, n)
	for i := 0; i < n; i++ {
		segs[i] = ops.Split(u, i, n)
	}
	back := ops.Rebuild(ops.Concat(segs))
	if !reflect.DeepEqual(back, u) {
		t.Fatalf("split/concat roundtrip:\ngot  %+v\nwant %+v", back, u)
	}
}

func TestDerivedMergeAddsEverything(t *testing.T) {
	zero := func() gradAgg {
		return gradAgg{Grad: make([]float64, 3), Hist: make([]int64, 2)}
	}
	ops, err := Derive(zero)
	if err != nil {
		t.Fatal(err)
	}
	a := gradAgg{Grad: []float64{1, 2, 3}, Hist: []int64{1, 1}, Loss: 0.5, Count: 2}
	b := gradAgg{Grad: []float64{10, 20, 30}, Hist: []int64{5, 5}, Loss: 1.5, Count: 3}
	m := ops.Merge(a, b)
	want := gradAgg{Grad: []float64{11, 22, 33}, Hist: []int64{6, 6}, Loss: 2, Count: 5}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("merge = %+v, want %+v", m, want)
	}
}

func TestAutoSplitAggregateStruct(t *testing.T) {
	const samples, dim = 200, 37
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6)

	zero := func() gradAgg {
		return gradAgg{Grad: make([]float64, dim), Hist: make([]int64, 4)}
	}
	seqOp := func(a gradAgg, v int64) gradAgg {
		for i := range a.Grad {
			a.Grad[i] += float64(v) + float64(i)
		}
		a.Hist[int(v)%4]++
		a.Loss += float64(v) * 0.5
		a.Count++
		return a
	}
	got, err := AutoSplitAggregate(r, zero, seqOp, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	want := zero()
	for i := 0; i < samples; i++ {
		want = seqOp(want, int64(i))
	}
	if !vecsClose(got.Grad, want.Grad, 1e-9) {
		t.Fatal("Grad mismatch")
	}
	if !reflect.DeepEqual(got.Hist, want.Hist) {
		t.Fatalf("Hist = %v, want %v", got.Hist, want.Hist)
	}
	if math.Abs(got.Loss-want.Loss) > 1e-9 || got.Count != want.Count {
		t.Fatalf("Loss/Count = %v/%d, want %v/%d", got.Loss, got.Count, want.Loss, want.Count)
	}
}

func TestAutoSplitAggregatePlainSlice(t *testing.T) {
	const samples, dim = 120, 19
	ctx := testContext(t, 2, 2)
	r := vectorRDD(ctx, samples, 4)
	got, err := AutoSplitAggregate(r, vecZero(dim), vecSeqOp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(got, expectedVector(samples, dim), 1e-9) {
		t.Fatal("auto split on []float64 mismatch")
	}
}

func TestAutoSplitAggregateInt64Slice(t *testing.T) {
	ctx := testContext(t, 2, 1)
	r := vectorRDD(ctx, 60, 3)
	zero := func() []int64 { return make([]int64, 9) }
	seqOp := func(a []int64, v int64) []int64 {
		a[int(v)%9] += v
		return a
	}
	got, err := AutoSplitAggregate(r, zero, seqOp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := zero()
	for i := int64(0); i < 60; i++ {
		want = seqOp(want, i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestAutoAgreesWithManual(t *testing.T) {
	const samples, dim = 150, 23
	ctx := testContext(t, 3, 2)
	r := vectorRDD(ctx, samples, 6).Cache()
	manual, err := SplitAggregate(r, vecZero(dim), vecSeqOp, AddF64,
		SplitSliceCopy[float64], AddF64, ConcatSlices[float64], Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := AutoSplitAggregate(r, vecZero(dim), vecSeqOp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsClose(manual, auto, 1e-9) {
		t.Fatal("auto-derived and hand-written split aggregation disagree")
	}
}

func TestAutoSegmentSerdeRoundTrip(t *testing.T) {
	f := func(f64 []float64, i64raw []int8, sf []float64, siRaw []int8) bool {
		i64 := make([]int64, len(i64raw))
		for i, v := range i64raw {
			i64[i] = int64(v)
		}
		si := make([]int64, len(siRaw))
		for i, v := range siRaw {
			si[i] = int64(v)
		}
		in := AutoSegment{
			F64:     [][]float64{f64, {1, 2}},
			I64:     [][]int64{i64},
			ScalarF: sf,
			ScalarI: si,
		}
		wire := in.MarshalBinaryTo(nil)
		var out AutoSegment
		n, err := out.UnmarshalBinaryFrom(wire)
		if err != nil || n != len(wire) {
			return false
		}
		if len(out.F64) != 2 || len(out.I64) != 1 {
			return false
		}
		for i := range f64 {
			if out.F64[0][i] != f64[i] && !(math.IsNaN(out.F64[0][i]) && math.IsNaN(f64[i])) {
				return false
			}
		}
		return reflect.DeepEqual(out.I64[0], i64) && reflect.DeepEqual(out.ScalarI, si)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDerivedSplitConcatIdentity(t *testing.T) {
	f := func(vals []float64, hist []int8, loss float64, count int8, nRaw uint8) bool {
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			loss = 1
		}
		n := int(nRaw%7) + 1
		h := make([]int64, len(hist))
		for i, v := range hist {
			h[i] = int64(v)
		}
		dim, hdim := len(vals), len(h)
		zero := func() gradAgg {
			return gradAgg{Grad: make([]float64, dim), Hist: make([]int64, hdim)}
		}
		ops, err := Derive(zero)
		if err != nil {
			return false
		}
		u := gradAgg{Grad: vals, Hist: h, Loss: loss, Count: int64(count)}
		segs := make([]AutoSegment, n)
		for i := 0; i < n; i++ {
			segs[i] = ops.Split(u, i, n)
		}
		back := ops.Rebuild(ops.Concat(segs))
		if back.Loss != loss || back.Count != int64(count) || !reflect.DeepEqual(back.Hist, u.Hist) {
			return false
		}
		for i := range vals {
			if back.Grad[i] != vals[i] && !(math.IsNaN(back.Grad[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
