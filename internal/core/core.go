// Package core implements Sparker's contribution: the Split
// Aggregation Interface (SAI) and In-Memory Merge (IMM) on top of the
// rdd engine.
//
// Three aggregation strategies are provided, matching the paper's
// Figure 16 comparison:
//
//   - TreeAggregate — re-exported Spark baseline (rdd.TreeAggregate):
//     per-task serialized results, combiner stages, serial driver merge.
//   - TreeAggregateIMM — tree aggregation with in-memory merge: tasks
//     on the same executor merge into a shared aggregator inside the
//     mutable object manager before anything is serialized, so only one
//     result per executor crosses the wire (§3.2, Figure 8).
//   - SplitAggregate — the full design (§3.1, Figure 6): IMM leaves one
//     aggregator per executor, a statically placed stage (SpawnRDD,
//     §4.3) splits each into P×N segments with splitOp and runs ring
//     reduce-scatter over the parallel directed ring, and the driver
//     gathers the reduced segments and reassembles them with concatOp.
//
// Type parameters follow the paper: T is the element type, U the
// aggregator type, V the aggregator-segment type. U and V may differ —
// the paper's abstract-aggregator argument — and both must be
// serde-encodable where they cross executor boundaries (U for IMM
// fetches, V for reduce-scatter traffic).
//
// One signature deviation from Figure 6: SplitAggregate and
// TreeAggregateIMM take mergeOp (U, U) → U for the intra-executor
// merge. The paper's shared in-memory value is merged with the
// aggregator class's own merge method (Figure 7, line 6), which its
// interface listing leaves implicit; Go has no method requirement to
// hang that on, so the callback is explicit.
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"sparker/internal/collective"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/serde"
	"sparker/internal/trace"
)

// Options tunes split aggregation.
//
// Deprecated: use the AggOption functional options of Aggregate
// (WithParallelism). Retained so existing call sites keep compiling.
type Options struct {
	// Parallelism is the number of PDR channels (and reduce-scatter
	// threads) per executor. Defaults to the context's RingParallelism
	// (the paper settles on 4).
	Parallelism int
}

// identityFuncs adapts a (zero, seqOp, mergeOp) triple to AggFuncs for
// the strategies that never split: the aggregator doubles as the sole
// segment. SplitOp is only ever invoked as SplitOp(u, 0, 1).
func identityFuncs[T, U any](zero func() U, seqOp func(U, T) U, mergeOp func(U, U) U) AggFuncs[T, U, U] {
	return AggFuncs[T, U, U]{
		Zero:    zero,
		SeqOp:   seqOp,
		MergeOp: mergeOp,
		SplitOp: func(u U, i, n int) U {
			if i != 0 || n != 1 {
				panic(fmt.Sprintf("core: identity SplitOp called with (%d, %d)", i, n))
			}
			return u
		},
		ReduceOp: mergeOp,
		ConcatOp: func(vs []U) U { return vs[0] },
	}
}

// TreeAggregate is the Spark baseline. See rdd.TreeAggregate.
//
// Deprecated: use Aggregate with WithStrategy(StrategyTree).
func TreeAggregate[T, U any](r *rdd.RDD[T], zero func() U, seqOp func(U, T) U, reduceOp func(U, U) U, depth int) (U, error) {
	return Aggregate(context.Background(), r, identityFuncs(zero, seqOp, reduceOp),
		WithStrategy(StrategyTree), WithDepth(depth))
}

// immState is the per-executor shared aggregator for one aggregation.
type immState[U any] struct {
	agg   U
	tasks int // number of task results merged in
}

// runIMMStage executes the reduced-result stage: every partition is
// folded with seqOp and merged into the executor's shared aggregator
// with mergeOp. On any task failure the stage's shared values are
// cleared on every executor and the whole stage re-submitted (§3.2).
// Afterwards each executor holds exactly one aggregator under
// prefix+"agg".
func runIMMStage[T, U any](r *rdd.RDD[T], prefix string, parent trace.SpanContext, tenant string, zero func() U, seqOp func(U, T) U, mergeOp func(U, U) U) error {
	ctx := r.Context()
	key := prefix + "agg"
	_, err := ctx.RunJob(rdd.JobSpec{
		Tenant:      tenant,
		Tasks:       r.NumPartitions(),
		TraceParent: parent,
		Fn: func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
			data, err := r.Materialize(ec, task)
			if err != nil {
				return nil, err
			}
			// Fold locally first so executor cores compute in parallel;
			// only the final merge serializes on the shared object.
			acc := zero()
			for _, v := range data {
				acc = seqOp(acc, v)
			}
			obj := ec.MutObjs.GetOrCreate(key, func() any {
				return &immState[U]{agg: zero()}
			})
			obj.Update(func(v any) any {
				st := v.(*immState[U])
				st.agg = mergeOp(st.agg, acc)
				st.tasks++
				return st
			})
			// A reduced-result task returns only (executor id, object
			// id) — the aggregator itself stays in executor memory.
			return []byte(fmt.Sprintf("%d:%s", ec.ID, key)), nil
		},
		StageCleanup: func(ec *rdd.ExecContext) error {
			ec.MutObjs.ClearPrefix(prefix)
			return nil
		},
	})
	return err
}

// runOnAllExecutorsTenant mirrors rdd.RunOnAllExecutors (one task per
// LIVE executor) with the stage charged to a fair-share tenant. The
// returned payloads are dense, in live order.
func runOnAllExecutorsTenant(ctx *rdd.Context, tenant string, fn func(ec *rdd.ExecContext, task, attempt int) ([]byte, error)) ([][]byte, error) {
	placement := append([]int(nil), ctx.LiveExecutors()...)
	if len(placement) == 0 {
		return nil, nil
	}
	return ctx.RunJob(rdd.JobSpec{Tenant: tenant, Tasks: len(placement), Placement: placement, Fn: fn})
}

// cleanupIMM drops the aggregation's shared state everywhere.
func cleanupIMM(ctx *rdd.Context, prefix string) {
	ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		ec.MutObjs.ClearPrefix(prefix)
		return nil, nil
	})
}

// sharedAgg returns the executor's merged aggregator, creating a zero
// one when the executor received no partitions.
func sharedAgg[U any](ec *rdd.ExecContext, key string, zero func() U) U {
	obj := ec.MutObjs.GetOrCreate(key, func() any {
		return &immState[U]{agg: zero()}
	})
	var out U
	obj.Read(func(v any) { out = v.(*immState[U]).agg })
	return out
}

// TreeAggregateIMM performs tree aggregation with in-memory merge:
// the reduced-result stage leaves one aggregator per executor, and a
// second stage serializes each of those for a serial driver merge. The
// reduction remains tree-shaped (driver-bound); only the serialization
// volume shrinks from one result per task to one per executor.
//
// Deprecated: use Aggregate with WithStrategy(StrategyIMM).
func TreeAggregateIMM[T, U any](r *rdd.RDD[T], zero func() U, seqOp func(U, T) U, mergeOp func(U, U) U) (U, error) {
	return Aggregate(context.Background(), r, identityFuncs(zero, seqOp, mergeOp),
		WithStrategy(StrategyIMM))
}

// treeAggregateIMM is the StrategyIMM implementation shared by
// Aggregate and the deprecated TreeAggregateIMM wrapper.
func treeAggregateIMM[T, U any](cctx context.Context, r *rdd.RDD[T], tenant string, zero func() U, seqOp func(U, T) U, mergeOp func(U, U) U) (U, error) {
	var zu U
	ctx := r.Context()
	prefix := fmt.Sprintf("imm/%d/", ctx.NewOpID())
	defer cleanupIMM(ctx, prefix)

	_, parent := trace.FromContext(cctx)
	start := time.Now()
	if err := runIMMStage(r, prefix, parent, tenant, zero, seqOp, mergeOp); err != nil {
		return zu, err
	}
	ctx.RecordPhase(metrics.PhaseAggCompute, time.Since(start), "IMM reduced-result stage")

	start = time.Now()
	defer func() { ctx.RecordPhase(metrics.PhaseAggReduce, time.Since(start), "reduce stage") }()
	payloads, err := runOnAllExecutorsTenant(ctx, tenant, func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
		return serde.Encode(nil, sharedAgg(ec, prefix+"agg", zero))
	})
	if err != nil {
		return zu, err
	}
	acc := zero()
	for _, p := range payloads {
		v, _, err := serde.Decode(p)
		if err != nil {
			return zu, err
		}
		acc = mergeOp(acc, v.(U))
	}
	return acc, nil
}

// SplitAggregate is the split aggregation interface of Figure 6.
//
// zero, seqOp: as in treeAggregate, building per-partition aggregators.
// mergeOp:     merges aggregators within one executor (IMM).
// splitOp:     returns segment i of n from an aggregator; all ranks
//
//	must agree on the segmentation.
//
// reduceOp:    merges two aggregator-segments.
// concatOp:    reassembles the ordered reduced segments into the final
//
//	result.
//
// The reduction runs as ring reduce-scatter over the PDR with
// opts.Parallelism channels, then the driver collects each executor's
// owned segments (the "gather via collect" of §4.2) and applies
// concatOp.
//
// Deprecated: use Aggregate, whose default strategy is StrategySplit.
func SplitAggregate[T, U, V any](
	r *rdd.RDD[T],
	zero func() U,
	seqOp func(U, T) U,
	mergeOp func(U, U) U,
	splitOp func(u U, i, n int) V,
	reduceOp func(V, V) V,
	concatOp func([]V) V,
	opts Options,
) (V, error) {
	return Aggregate(context.Background(), r, AggFuncs[T, U, V]{
		Zero:     zero,
		SeqOp:    seqOp,
		MergeOp:  mergeOp,
		SplitOp:  splitOp,
		ReduceOp: reduceOp,
		ConcatOp: concatOp,
	}, WithParallelism(opts.Parallelism))
}

// serdeOps builds the collective callbacks for a serde-encodable
// segment type. EncodeTo reuses the pooled wire buffer's capacity, so
// the ring loops avoid per-step encode allocations; Decode must stay
// the generic framed path (the concrete codec may retain slices), so no
// fused decode-reduce is offered here — F64-shaped aggregators that
// want the fully fused path use collective.F64Ops directly.
func serdeOps[V any](reduceOp func(V, V) V) collective.Ops[V] {
	return collective.Ops[V]{
		Reduce:   reduceOp,
		Encode:   func(dst []byte, v V) []byte { return serde.MustEncode(dst, v) },
		EncodeTo: func(dst []byte, v V) []byte { return serde.MustEncode(dst[:0], v) },
		Decode: func(src []byte) (V, error) {
			val, _, err := serde.Decode(src)
			if err != nil {
				var z V
				return z, err
			}
			return val.(V), nil
		},
	}
}

// splitParallel applies splitOp across the executor's cores — the
// reason §3.1 defines splitOp to return one segment per call: "multiple
// threads can split a single aggregator in parallel".
func splitParallel[U, V any](agg U, nSegs, workers int, splitOp func(U, int, int) V) []V {
	segs := make([]V, nSegs)
	if workers < 2 || nSegs < 2 {
		for i := range segs {
			segs[i] = splitOp(agg, i, nSegs)
		}
		return segs
	}
	if workers > nSegs {
		workers = nSegs
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nSegs; i += workers {
				segs[i] = splitOp(agg, i, nSegs)
			}
		}(w)
	}
	wg.Wait()
	return segs
}

// encodeOwned frames a rank's owned segments as count + (index, bytes)
// pairs, sorted by index for determinism.
func encodeOwned[V any](owned map[int]V, ops collective.Ops[V]) ([]byte, error) {
	idxs := make([]int, 0, len(owned))
	for i := range owned {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(idxs)))
	for _, i := range idxs {
		b = binary.LittleEndian.AppendUint32(b, uint32(i))
		seg := ops.Encode(nil, owned[i])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(seg)))
		b = append(b, seg...)
	}
	return b, nil
}

func decodeOwned[V any](p []byte, segs []V, seen []bool, ops collective.Ops[V]) error {
	if len(p) < 4 {
		return fmt.Errorf("core: short owned-segments frame")
	}
	n := int(binary.LittleEndian.Uint32(p))
	off := 4
	for k := 0; k < n; k++ {
		if len(p) < off+8 {
			return fmt.Errorf("core: truncated owned-segments frame")
		}
		idx := int(binary.LittleEndian.Uint32(p[off:]))
		segLen := int(binary.LittleEndian.Uint32(p[off+4:]))
		off += 8
		if len(p) < off+segLen {
			return fmt.Errorf("core: truncated segment %d", idx)
		}
		if idx < 0 || idx >= len(segs) {
			return fmt.Errorf("core: segment index %d out of range", idx)
		}
		v, err := ops.Decode(p[off : off+segLen])
		if err != nil {
			return err
		}
		segs[idx] = v
		seen[idx] = true
		off += segLen
	}
	return nil
}
