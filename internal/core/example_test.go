package core_test

import (
	"fmt"
	"log"

	"sparker/internal/core"
	"sparker/internal/rdd"
)

// The split aggregation interface end to end: aggregate a vector over
// a 3-executor cluster with the reduction running as ring
// reduce-scatter.
func ExampleSplitAggregate() {
	ctx, err := rdd.NewContext(rdd.Config{Name: "ex-split", NumExecutors: 3, CoresPerExecutor: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	samples := rdd.FromSlice(ctx, []int64{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	sum, err := core.SplitAggregate(samples,
		func() []float64 { return make([]float64, 4) }, // zeroValue
		func(acc []float64, v int64) []float64 { // seqOp
			acc[int(v)%4] += float64(v)
			return acc
		},
		core.AddF64,                  // mergeOp (IMM, executor-local)
		core.SplitSliceCopy[float64], // splitOp
		core.AddF64,                  // reduceOp (on segments)
		core.ConcatSlices[float64],   // concatOp
		core.Options{Parallelism: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: [4 6 8 10]
}

// Derived callbacks: the same aggregation with splitOp/reduceOp/
// concatOp synthesized from the aggregator's structure.
func ExampleAutoSplitAggregate() {
	ctx, err := rdd.NewContext(rdd.Config{Name: "ex-auto", NumExecutors: 2, CoresPerExecutor: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ctx.Close()

	type stats struct {
		Sum   []float64
		Count int64
	}
	samples := rdd.FromSlice(ctx, []int64{1, 2, 3, 4}, 2)
	out, err := core.AutoSplitAggregate(samples,
		func() stats { return stats{Sum: make([]float64, 2)} },
		func(s stats, v int64) stats {
			s.Sum[int(v)%2] += float64(v)
			s.Count++
			return s
		},
		core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Sum, out.Count)
	// Output: [6 4] 4
}

func ExampleSplitSlice() {
	a := []float64{0, 1, 2, 3, 4, 5, 6}
	for i := 0; i < 3; i++ {
		fmt.Println(core.SplitSlice(a, i, 3))
	}
	// Output:
	// [0 1]
	// [2 3]
	// [4 5 6]
}
