package serde

import "testing"

// FuzzDecode asserts the decoder never panics and never misreports
// consumed bytes, whatever arrives on the wire — malformed frames from
// a corrupted transport must surface as errors.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		nil,
		{0, 0, 0, 0},
		{1, 0, 0, 0},                       // tagSelf with no body
		{7, 0, 0, 0, 255, 255, 255, 255},   // []float64 with huge length
		{4, 0, 0, 0, 3, 0, 0, 0, 'a', 'b'}, // truncated string
	}
	if b, err := Encode(nil, []float64{1, 2, 3}); err == nil {
		seeds = append(seeds, b)
	}
	if b, err := Encode(nil, "hello"); err == nil {
		seeds = append(seeds, b)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if v == nil {
			t.Fatal("Decode returned nil value without error")
		}
	})
}
