package serde

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Built-in codecs for the primitive and slice types that flow through
// the engine: task counters, aggregator arrays, shuffle keys.

const (
	tagInt64     = 2
	tagFloat64   = 3
	tagString    = 4
	tagBool      = 5
	tagBytes     = 6
	tagF64Slice  = 7
	tagI64Slice  = 8
	tagInt       = 9
	tagF64Matrix = 10
)

func init() {
	registerBuiltin(tagInt64, int64(0), int64Codec{})
	registerBuiltin(tagFloat64, float64(0), float64Codec{})
	registerBuiltin(tagString, "", stringCodec{})
	registerBuiltin(tagBool, false, boolCodec{})
	registerBuiltin(tagBytes, []byte(nil), bytesCodec{})
	registerBuiltin(tagF64Slice, []float64(nil), f64SliceCodec{})
	registerBuiltin(tagI64Slice, []int64(nil), i64SliceCodec{})
	registerBuiltin(tagInt, int(0), intCodec{})
	registerBuiltin(tagF64Matrix, [][]float64(nil), f64MatrixCodec{})
}

type int64Codec struct{}

func (int64Codec) Encode(dst []byte, v any) ([]byte, error) {
	return appendUint64(dst, uint64(v.(int64))), nil
}

func (int64Codec) Decode(src []byte) (any, int, error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("serde: short int64")
	}
	return int64(binary.LittleEndian.Uint64(src)), 8, nil
}

type intCodec struct{}

func (intCodec) Encode(dst []byte, v any) ([]byte, error) {
	return appendUint64(dst, uint64(v.(int))), nil
}

func (intCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("serde: short int")
	}
	return int(binary.LittleEndian.Uint64(src)), 8, nil
}

type float64Codec struct{}

func (float64Codec) Encode(dst []byte, v any) ([]byte, error) {
	return AppendFloat64(dst, v.(float64)), nil
}

func (float64Codec) Decode(src []byte) (any, int, error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("serde: short float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), 8, nil
}

type stringCodec struct{}

func (stringCodec) Encode(dst []byte, v any) ([]byte, error) {
	s := v.(string)
	dst = appendUint32(dst, uint32(len(s)))
	return append(dst, s...), nil
}

func (stringCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short string header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+n {
		return nil, 0, fmt.Errorf("serde: short string body")
	}
	return string(src[4 : 4+n]), 4 + n, nil
}

type boolCodec struct{}

func (boolCodec) Encode(dst []byte, v any) ([]byte, error) {
	if v.(bool) {
		return append(dst, 1), nil
	}
	return append(dst, 0), nil
}

func (boolCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 1 {
		return nil, 0, fmt.Errorf("serde: short bool")
	}
	return src[0] != 0, 1, nil
}

type bytesCodec struct{}

func (bytesCodec) Encode(dst []byte, v any) ([]byte, error) {
	b := v.([]byte)
	dst = appendUint32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

func (bytesCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short bytes header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+n {
		return nil, 0, fmt.Errorf("serde: short bytes body")
	}
	out := make([]byte, n)
	copy(out, src[4:4+n])
	return out, 4 + n, nil
}

type f64SliceCodec struct{}

func (f64SliceCodec) Encode(dst []byte, v any) ([]byte, error) {
	s := v.([]float64)
	dst = appendUint32(dst, uint32(len(s)))
	return AppendFloat64s(dst, s), nil
}

func (f64SliceCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short []float64 header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+8*n {
		return nil, 0, fmt.Errorf("serde: short []float64 body")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = Float64At(src, 4+8*i)
	}
	return out, 4 + 8*n, nil
}

type i64SliceCodec struct{}

func (i64SliceCodec) Encode(dst []byte, v any) ([]byte, error) {
	s := v.([]int64)
	dst = appendUint32(dst, uint32(len(s)))
	for _, x := range s {
		dst = appendUint64(dst, uint64(x))
	}
	return dst, nil
}

func (i64SliceCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short []int64 header")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+8*n {
		return nil, 0, fmt.Errorf("serde: short []int64 body")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(src[4+8*i:]))
	}
	return out, 4 + 8*n, nil
}

type f64MatrixCodec struct{}

func (f64MatrixCodec) Encode(dst []byte, v any) ([]byte, error) {
	m := v.([][]float64)
	dst = appendUint32(dst, uint32(len(m)))
	for _, row := range m {
		dst = appendUint32(dst, uint32(len(row)))
		dst = AppendFloat64s(dst, row)
	}
	return dst, nil
}

func (f64MatrixCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short [][]float64 header")
	}
	rows := int(binary.LittleEndian.Uint32(src))
	off := 4
	out := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		if len(src) < off+4 {
			return nil, 0, fmt.Errorf("serde: short [][]float64 row header")
		}
		n := int(binary.LittleEndian.Uint32(src[off:]))
		off += 4
		if len(src) < off+8*n {
			return nil, 0, fmt.Errorf("serde: short [][]float64 row body")
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = Float64At(src, off+8*j)
		}
		out[i] = row
		off += 8 * n
	}
	return out, off, nil
}
