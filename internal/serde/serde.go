// Package serde provides the serialization framework used by the rdd
// engine, the block manager and the scalable communicator.
//
// Every value that crosses an executor boundary — task results, shuffle
// blocks, aggregator segments — is encoded to bytes through this package,
// so serialization cost in the functional layer is real, mirroring the
// role of JavaSerializer/Kryo in Spark. Sparker's in-memory merge (IMM)
// optimization is visible precisely because it removes trips through
// this package.
//
// Values are encoded as a type tag followed by the codec-specific
// payload. Codecs are registered per concrete type; a handful of
// built-in codecs cover the types used by the engine and MLlib.
package serde

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Marshaler is implemented by types that know how to serialize
// themselves. Types implementing Marshaler do not need a registered
// codec as long as they also implement Unmarshaler on their pointer.
type Marshaler interface {
	// MarshalBinaryTo appends the binary form of the value to dst and
	// returns the extended slice.
	MarshalBinaryTo(dst []byte) []byte
}

// Unmarshaler is the inverse of Marshaler.
type Unmarshaler interface {
	// UnmarshalBinaryFrom decodes the value from src and returns the
	// number of bytes consumed.
	UnmarshalBinaryFrom(src []byte) (int, error)
}

// Codec encodes and decodes values of a single concrete type.
type Codec interface {
	// Encode appends the binary form of v to dst.
	Encode(dst []byte, v any) ([]byte, error)
	// Decode reads one value from src, returning it and the number of
	// bytes consumed.
	Decode(src []byte) (any, int, error)
}

type registryEntry struct {
	tag   uint32
	codec Codec
}

var (
	regMu   sync.RWMutex
	byType         = map[reflect.Type]registryEntry{}
	byTag          = map[uint32]registryEntry{}
	nextTag uint32 = 64 // tags below 64 reserved for built-ins
)

// Register associates codec with the concrete dynamic type of sample.
// It must be called before any value of that type is encoded, typically
// from an init function. Registering the same type twice panics.
func Register(sample any, codec Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("serde: Register with nil sample")
	}
	if _, dup := byType[t]; dup {
		panic(fmt.Sprintf("serde: codec for %v registered twice", t))
	}
	e := registryEntry{tag: nextTag, codec: codec}
	nextTag++
	byType[t] = e
	byTag[e.tag] = e
}

// registerBuiltin installs a codec with a fixed tag < 64.
func registerBuiltin(tag uint32, sample any, codec Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf(sample)
	if _, dup := byType[t]; dup {
		panic(fmt.Sprintf("serde: builtin codec for %v registered twice", t))
	}
	e := registryEntry{tag: tag, codec: codec}
	byType[t] = e
	byTag[tag] = e
}

// Encode appends the framed binary form of v (type tag + payload) to dst.
func Encode(dst []byte, v any) ([]byte, error) {
	if m, ok := v.(Marshaler); ok {
		// Tag 1 = self-marshaling value; the concrete type must be
		// recoverable by the caller (used for homogeneous streams).
		dst = appendUint32(dst, tagSelf)
		dst = appendUint32(dst, selfTypeTag(v))
		return m.MarshalBinaryTo(dst), nil
	}
	regMu.RLock()
	e, ok := byType[reflect.TypeOf(v)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serde: no codec for %T", v)
	}
	dst = appendUint32(dst, e.tag)
	return e.codec.Encode(dst, v)
}

// Decode reads one framed value from src.
func Decode(src []byte) (any, int, error) {
	if len(src) < 4 {
		return nil, 0, fmt.Errorf("serde: short buffer (%d bytes)", len(src))
	}
	tag := binary.LittleEndian.Uint32(src)
	if tag == tagSelf {
		return decodeSelf(src)
	}
	regMu.RLock()
	e, ok := byTag[tag]
	regMu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("serde: unknown type tag %d", tag)
	}
	v, n, err := e.codec.Decode(src[4:])
	if err != nil {
		return nil, 0, err
	}
	return v, n + 4, nil
}

// MustEncode is Encode for values known to have codecs; it panics on error.
func MustEncode(dst []byte, v any) []byte {
	b, err := Encode(dst, v)
	if err != nil {
		panic(err)
	}
	return b
}

// EncodedSize returns the number of bytes Encode would produce for v.
func EncodedSize(v any) (int, error) {
	b, err := Encode(nil, v)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// --- self-marshaling type registry -----------------------------------

// Self-marshaling types still need a factory so Decode can construct a
// fresh value to unmarshal into.

const tagSelf = 1

var (
	selfMu      sync.RWMutex
	selfByType         = map[reflect.Type]uint32{}
	selfFactory        = map[uint32]func() Unmarshaler{}
	selfNext    uint32 = 1
)

// RegisterSelfOnce is RegisterSelf that tolerates duplicate
// registration — needed for generic instantiations (e.g. rdd.Pair[K,V])
// that register themselves from multiple call sites.
func RegisterSelfOnce(sample Marshaler, factory func() Unmarshaler) {
	selfMu.Lock()
	defer selfMu.Unlock()
	t := reflect.TypeOf(sample)
	if _, dup := selfByType[t]; dup {
		return
	}
	id := selfNext
	selfNext++
	selfByType[t] = id
	selfFactory[id] = factory
}

// RegisterSelf registers a factory for a self-marshaling type. sample
// must implement Marshaler and the value returned by factory must
// implement Unmarshaler.
func RegisterSelf(sample Marshaler, factory func() Unmarshaler) {
	selfMu.Lock()
	defer selfMu.Unlock()
	t := reflect.TypeOf(sample)
	if _, dup := selfByType[t]; dup {
		panic(fmt.Sprintf("serde: self codec for %v registered twice", t))
	}
	id := selfNext
	selfNext++
	selfByType[t] = id
	selfFactory[id] = factory
}

func selfTypeTag(v any) uint32 {
	selfMu.RLock()
	defer selfMu.RUnlock()
	id, ok := selfByType[reflect.TypeOf(v)]
	if !ok {
		panic(fmt.Sprintf("serde: self-marshaling type %T not registered with RegisterSelf", v))
	}
	return id
}

func decodeSelf(src []byte) (v any, n int, err error) {
	if len(src) < 8 {
		return nil, 0, fmt.Errorf("serde: short self-marshaled buffer")
	}
	id := binary.LittleEndian.Uint32(src[4:])
	selfMu.RLock()
	factory, ok := selfFactory[id]
	selfMu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("serde: unknown self type id %d", id)
	}
	// Unmarshalers are written against well-formed frames; a truncated
	// or corrupted buffer must surface as an error, not take the
	// process down.
	defer func() {
		if r := recover(); r != nil {
			v, n = nil, 0
			err = fmt.Errorf("serde: corrupt self-marshaled frame for type id %d: %v", id, r)
		}
	}()
	u := factory()
	used, err := u.UnmarshalBinaryFrom(src[8:])
	if err != nil {
		return nil, 0, err
	}
	if used < 0 || used > len(src)-8 {
		return nil, 0, fmt.Errorf("serde: unmarshaler for type id %d consumed %d of %d bytes", id, used, len(src)-8)
	}
	return deref(u), used + 8, nil
}

// deref unwraps pointer receivers that marshal value types: if the
// factory returned *T and T implements Marshaler, return T.
func deref(v Unmarshaler) any {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		if _, ok := rv.Elem().Interface().(Marshaler); ok {
			return rv.Elem().Interface()
		}
	}
	return v
}

// --- primitive helpers ------------------------------------------------

func appendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendFloat64 appends the IEEE-754 encoding of f.
func AppendFloat64(dst []byte, f float64) []byte {
	return appendUint64(dst, math.Float64bits(f))
}

// AppendFloat64s bulk-appends the IEEE-754 encodings of vals, growing
// dst at most once to the exact 8·len size instead of amortized-append
// per element — the aggregator-payload hot path.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	need := 8 * len(vals)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	off := len(dst)
	dst = dst[:off+need]
	for _, f := range vals {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(f))
		off += 8
	}
	return dst
}

// Float64At reads a float64 at offset i.
func Float64At(src []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
}

// AppendInt appends a 64-bit little-endian integer.
func AppendInt(dst []byte, v int) []byte {
	return appendUint64(dst, uint64(v))
}

// IntAt reads a 64-bit little-endian integer at offset i.
func IntAt(src []byte, i int) int {
	return int(binary.LittleEndian.Uint64(src[i:]))
}
