package serde

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	b, err := Encode(nil, v)
	if err != nil {
		t.Fatalf("Encode(%v): %v", v, err)
	}
	got, n, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("Decode consumed %d bytes, encoded %d", n, len(b))
	}
	return got
}

func TestRoundTripPrimitives(t *testing.T) {
	cases := []any{
		int64(-5), int64(0), int64(math.MaxInt64),
		int(42), int(-1),
		float64(3.14159), float64(0), math.Inf(1),
		"", "hello, 世界",
		true, false,
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("roundtrip %v (%T): got %v (%T)", v, v, got, got)
		}
	}
}

func TestRoundTripSlices(t *testing.T) {
	cases := []any{
		[]byte{1, 2, 3},
		[]byte{},
		[]float64{1.5, -2.5, 0},
		[]float64{},
		[]int64{9, -9, 0},
		[][]float64{{1, 2}, {}, {3}},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		// Codecs normalize nil/empty to empty; compare lengths + content.
		if !reflect.DeepEqual(got, v) && !(reflect.ValueOf(v).Len() == 0 && reflect.ValueOf(got).Len() == 0) {
			t.Errorf("roundtrip %v: got %v", v, got)
		}
	}
}

func TestRoundTripNaN(t *testing.T) {
	got := roundTrip(t, math.NaN()).(float64)
	if !math.IsNaN(got) {
		t.Errorf("NaN roundtrip gave %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, _, err := Decode([]byte{0xff, 0xff, 0xff, 0x3f}); err == nil {
		t.Error("Decode with unknown tag should fail")
	}
	// Truncated payloads.
	full, _ := Encode(nil, []float64{1, 2, 3})
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); err == nil && cut < len(full) {
			// Truncating within the trailing floats must error.
			if cut < len(full) {
				t.Errorf("Decode of %d/%d bytes should fail", cut, len(full))
			}
		}
	}
}

func TestEncodeUnknownType(t *testing.T) {
	type private struct{ x int }
	if _, err := Encode(nil, private{1}); err == nil {
		t.Error("Encode of unregistered type should fail")
	}
}

func TestEncodedSize(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	n, err := EncodedSize(v)
	if err != nil {
		t.Fatal(err)
	}
	// 4 tag + 4 len + 4*8 payload.
	if n != 4+4+32 {
		t.Errorf("EncodedSize = %d, want 40", n)
	}
}

func TestQuickFloat64SliceRoundTrip(t *testing.T) {
	f := func(s []float64) bool {
		b, err := Encode(nil, s)
		if err != nil {
			return false
		}
		got, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		gs := got.([]float64)
		if len(gs) != len(s) {
			return false
		}
		for i := range s {
			if gs[i] != s[i] && !(math.IsNaN(gs[i]) && math.IsNaN(s[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b, err := Encode(nil, s)
		if err != nil {
			return false
		}
		got, _, err := Decode(b)
		return err == nil && got.(string) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- self-marshaling test type ---------------------------------------

type pointPair struct{ A, B float64 }

func (p pointPair) MarshalBinaryTo(dst []byte) []byte {
	dst = AppendFloat64(dst, p.A)
	return AppendFloat64(dst, p.B)
}

func (p *pointPair) UnmarshalBinaryFrom(src []byte) (int, error) {
	p.A = Float64At(src, 0)
	p.B = Float64At(src, 8)
	return 16, nil
}

func init() {
	RegisterSelf(pointPair{}, func() Unmarshaler { return new(pointPair) })
}

func TestSelfMarshaling(t *testing.T) {
	v := pointPair{1.5, -2.5}
	got := roundTrip(t, v)
	if got != v {
		t.Errorf("self roundtrip: got %v want %v", got, v)
	}
}

// --- custom codec registration path ------------------------------------

type rgbColor struct{ R, G, B uint8 }

type rgbCodec struct{}

func (rgbCodec) Encode(dst []byte, v any) ([]byte, error) {
	c := v.(rgbColor)
	return append(dst, c.R, c.G, c.B), nil
}

func (rgbCodec) Decode(src []byte) (any, int, error) {
	if len(src) < 3 {
		return nil, 0, fmt.Errorf("short rgb")
	}
	return rgbColor{src[0], src[1], src[2]}, 3, nil
}

func init() {
	Register(rgbColor{}, rgbCodec{})
}

func TestRegisteredCodecRoundTrip(t *testing.T) {
	v := rgbColor{10, 20, 30}
	got := roundTrip(t, v)
	if got != v {
		t.Fatalf("roundtrip = %v", got)
	}
	// MustEncode succeeds for registered types...
	b := MustEncode(nil, v)
	if len(b) != 7 { // 4 tag + 3 payload
		t.Fatalf("encoded %d bytes", len(b))
	}
	// ...and panics for unknown ones.
	defer func() {
		if recover() == nil {
			t.Error("MustEncode of unregistered type should panic")
		}
	}()
	type nope struct{ X chan int }
	MustEncode(nil, nope{})
}

func TestRegisterSelfOnceIdempotent(t *testing.T) {
	// Registering the same self-marshaling type repeatedly must not
	// panic and must keep decoding working.
	for i := 0; i < 3; i++ {
		RegisterSelfOnce(pointPair{}, func() Unmarshaler { return new(pointPair) })
	}
	got := roundTrip(t, pointPair{9, -9})
	if got != (pointPair{9, -9}) {
		t.Fatalf("roundtrip after re-registration = %v", got)
	}
}

func TestIntHelpers(t *testing.T) {
	b := AppendInt(nil, -42)
	if got := IntAt(b, 0); got != -42 {
		t.Fatalf("IntAt = %d", got)
	}
}
