// Package obsv is Sparker's flight recorder: an always-on, bounded,
// allocation-free ring buffer per executor and driver that retains the
// most recent spans, event-log markers, and metric snapshots, and an
// Observer that serializes a self-contained postmortem bundle when an
// anomaly trips (ring fallback, speculative launch, codec disable,
// classified peer failure, job failure/cancel, or a p99 step-latency
// regression against a rolling baseline).
//
// The recorder is designed so that the hot ring path (internal/
// collective) can record one fixed-size Record per step without
// allocating: Record is a value struct of scalars and pre-interned
// strings, the Ring is a preallocated slice guarded by a mutex, and a
// nil *Ring is a valid disabled recorder whose every method no-ops —
// the same convention as trace.Tracer and metrics.Histogram, enforced
// by the `make overhead` alloc gate.
package obsv

import (
	"context"
	"sync"
	"time"

	"sparker/internal/trace"
)

// Kind classifies a flight-recorder record.
type Kind uint8

const (
	// KindStep is one collective ring step (hot path): A=duration ns,
	// B=wire bytes, C=epoch, D=channel<<32|step.
	KindStep Kind = iota + 1
	// KindMarker is an anomaly/event marker: Name=counter name.
	KindMarker
	// KindPhase is a coarse engine phase: A=duration ns.
	KindPhase
	// KindSpan is a finished trace span: A=duration ns, B=trace ID,
	// C=span ID, D=parent span ID (int64 bit patterns of the uint64s).
	KindSpan
	// KindSnapshot is a periodic metric snapshot: A=windowed step
	// count, B=windowed p50 ns, C=windowed p99 ns, D=heap bytes.
	KindSnapshot
	// KindProfile is a profiling sample: A=heap bytes, B=cumulative
	// alloc bytes, C=goroutines, D=job ID (0 for periodic samples).
	KindProfile
)

// String renders the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindStep:
		return "step"
	case KindMarker:
		return "marker"
	case KindPhase:
		return "phase"
	case KindSpan:
		return "span"
	case KindSnapshot:
		return "snapshot"
	case KindProfile:
		return "profile"
	}
	return "?"
}

// Record is one fixed-size flight-recorder entry. The A–D scalars are
// interpreted per Kind (see the Kind constants); Name and Detail are
// expected to be pre-interned (constant) strings on hot paths so
// recording never allocates.
type Record struct {
	TimeNS int64  `json:"t"`
	Kind   Kind   `json:"k"`
	Name   string `json:"n,omitempty"`
	Detail string `json:"msg,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
	D      int64  `json:"d,omitempty"`
}

// Ring is a bounded flight-recorder buffer. Writers overwrite the
// oldest record once full; Snapshot copies out the retained window.
// All methods are safe for concurrent use and no-op on a nil receiver.
type Ring struct {
	mu        sync.Mutex
	recs      []Record
	next      uint64 // total records ever written
	lastEpoch uint32 // most recent collective epoch seen by Step
}

// DefaultRingSize is the per-ring record capacity when Config.RingSize
// is zero. At one record per ring step a 4-executor run retains on the
// order of the last several hundred collectives.
const DefaultRingSize = 4096

// NewRing returns a recorder retaining the last n records (n<=0 uses
// DefaultRingSize). The buffer is allocated up front; recording never
// allocates afterward.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{recs: make([]Record, n)}
}

func (r *Ring) put(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs[r.next%uint64(len(r.recs))] = rec
	r.next++
	r.mu.Unlock()
}

// Step records one collective ring step — the hot-path entry. op must
// be a constant string; the call performs no allocation (one mutex
// acquire and a struct store).
func (r *Ring) Step(op string, durNS, wireBytes int64, epoch uint32, channel, step int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs[r.next%uint64(len(r.recs))] = Record{
		TimeNS: time.Now().UnixNano(),
		Kind:   KindStep,
		Name:   op,
		A:      durNS,
		B:      wireBytes,
		C:      int64(epoch),
		D:      int64(channel)<<32 | int64(uint32(step)),
	}
	r.next++
	r.lastEpoch = epoch
	r.mu.Unlock()
}

// Marker records an event-log marker (counter increment).
func (r *Ring) Marker(name, detail string) {
	r.put(Record{TimeNS: time.Now().UnixNano(), Kind: KindMarker, Name: name, Detail: detail})
}

// Phase records a coarse engine phase duration.
func (r *Ring) Phase(name string, d time.Duration, detail string) {
	r.put(Record{TimeNS: time.Now().UnixNano(), Kind: KindPhase, Name: name, Detail: detail, A: d.Nanoseconds()})
}

// Span records a finished trace span. The span's error attribute, when
// present, becomes the record detail so postmortems surface failures.
func (r *Ring) Span(s trace.Span) {
	if r == nil {
		return
	}
	detail, _ := s.Attr("error")
	r.put(Record{
		TimeNS: s.Start,
		Kind:   KindSpan,
		Name:   s.Name,
		Detail: detail,
		A:      s.End - s.Start,
		B:      int64(s.TraceID),
		C:      int64(s.SpanID),
		D:      int64(s.ParentID),
	})
}

// Profile records a profiling sample (per-stage delta or periodic).
func (r *Ring) Profile(name, detail string, heap, cumAlloc int64, goroutines int, jobID int64) {
	r.put(Record{
		TimeNS: time.Now().UnixNano(),
		Kind:   KindProfile,
		Name:   name,
		Detail: detail,
		A:      heap,
		B:      cumAlloc,
		C:      int64(goroutines),
		D:      jobID,
	})
}

// LastEpoch returns the most recent collective epoch recorded by Step —
// the "current epoch" surfaced by /debug/sparker/topology.
func (r *Ring) LastEpoch() uint32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastEpoch
}

// RingDump is the serialized contents of one Ring, oldest record first.
type RingDump struct {
	Total   uint64   `json:"total"`             // records ever written
	Dropped uint64   `json:"dropped,omitempty"` // overwritten before the dump
	Records []Record `json:"records"`
}

// Snapshot copies out the retained window, oldest first.
func (r *Ring) Snapshot() RingDump {
	if r == nil {
		return RingDump{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.recs))
	kept := r.next
	if kept > n {
		kept = n
	}
	out := make([]Record, 0, kept)
	for i := r.next - kept; i < r.next; i++ {
		out = append(out, r.recs[i%n])
	}
	return RingDump{Total: r.next, Dropped: r.next - kept, Records: out}
}

// --- context propagation ----------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the flight-recorder ring, the form
// the collective layer reads back with FromContext. A nil ring returns
// ctx unchanged so the disabled path adds no context allocation.
func NewContext(ctx context.Context, r *Ring) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the ring from ctx; nil when uninstrumented.
func FromContext(ctx context.Context) *Ring {
	r, _ := ctx.Value(ctxKey{}).(*Ring)
	return r
}
