package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BundleVersion is the postmortem bundle schema version. Validate
// rejects bundles from a different major schema.
const BundleVersion = 1

// Trigger identifies the anomaly that caused a bundle dump.
type Trigger struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	TimeNS int64  `json:"t"`
}

// Bundle is a self-contained postmortem: the trigger, the cluster
// geometry, the pre-trigger metric snapshot history, cumulative
// counters, and the driver plus per-executor flight-recorder rings.
// Everything sparker-analyze -postmortem needs to render an incident
// report lives in this one JSON document.
type Bundle struct {
	Version       int               `json:"version"`
	Trigger       Trigger           `json:"trigger"`
	WrittenNS     int64             `json:"written_ns"`
	Cluster       Geometry          `json:"cluster"`
	BaselineP99NS int64             `json:"baseline_p99_ns,omitempty"`
	Snapshots     []MetricsSnapshot `json:"snapshots"` // oldest first
	Counters      map[string]int64  `json:"counters,omitempty"`
	Driver        RingDump          `json:"driver"`
	Executors     []ExecDump        `json:"executors,omitempty"`
}

// Load reads and decodes a bundle file.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obsv: decoding bundle %s: %w", path, err)
	}
	return &b, nil
}

// Validate checks the structural invariants sparker-analyze -validate
// enforces: schema version, a trigger marker present in the driver
// ring, at least one correlated span (a span with a parent, or two
// spans sharing a trace), and at least one metric snapshot taken at or
// before the trigger.
func (b *Bundle) Validate() error {
	if b.Version != BundleVersion {
		return fmt.Errorf("bundle version %d, want %d", b.Version, BundleVersion)
	}
	if b.Trigger.Name == "" || b.Trigger.TimeNS == 0 {
		return fmt.Errorf("bundle has no trigger")
	}
	marker := false
	for _, r := range b.Driver.Records {
		if r.Kind == KindMarker && r.Name == b.Trigger.Name {
			marker = true
			break
		}
	}
	if !marker {
		return fmt.Errorf("driver ring has no %q marker record", b.Trigger.Name)
	}
	if !b.hasCorrelatedSpan() {
		return fmt.Errorf("bundle has no correlated span (no span with a parent or shared trace)")
	}
	pre := false
	for _, s := range b.Snapshots {
		if s.TimeNS <= b.Trigger.TimeNS {
			pre = true
			break
		}
	}
	if !pre {
		return fmt.Errorf("bundle has no pre-trigger metric snapshot")
	}
	return nil
}

func (b *Bundle) hasCorrelatedSpan() bool {
	traces := map[int64]int{}
	scan := func(d RingDump) bool {
		for _, r := range d.Records {
			if r.Kind != KindSpan {
				continue
			}
			if r.D != 0 { // has a parent span
				return true
			}
			if r.B != 0 {
				traces[r.B]++
				if traces[r.B] >= 2 {
					return true
				}
			}
		}
		return false
	}
	if scan(b.Driver) {
		return true
	}
	for _, e := range b.Executors {
		if scan(e.Ring) {
			return true
		}
	}
	return false
}

// AllRecords merges the driver and executor rings into one timeline,
// tagging each record with its source (-1 = driver, else executor id).
// Sorted by time, oldest first — the spine of the incident report.
func (b *Bundle) AllRecords() []SourcedRecord {
	var out []SourcedRecord
	for _, r := range b.Driver.Records {
		out = append(out, SourcedRecord{Exec: -1, Record: r})
	}
	for _, e := range b.Executors {
		for _, r := range e.Ring.Records {
			out = append(out, SourcedRecord{Exec: e.Exec, Record: r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return out
}

// SourcedRecord is a Record tagged with the ring it came from.
type SourcedRecord struct {
	Exec int // -1 for the driver ring
	Record
}
