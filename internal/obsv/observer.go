package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/trace"
)

// TriggerP99Regression is the anomaly the Observer detects itself: the
// windowed p99 of ring-step latency exceeding Config.RegressionFactor
// times the rolling EWMA baseline.
const TriggerP99Regression = "p99-regression"

// DefaultTriggers returns the marker names that trip a postmortem dump
// when Config.Triggers is nil: every guardrail the engine records as a
// counter marker, plus the Observer's own latency-regression detector.
func DefaultTriggers() []string {
	return []string{
		metrics.CounterRingFallback,
		metrics.CounterPeerFailure,
		metrics.CounterSpecLaunched,
		metrics.CounterCompressDisabled,
		metrics.CounterJobFailed,
		metrics.CounterJobCancelled,
		metrics.CounterExecutorEvict,
		TriggerP99Regression,
	}
}

// Config tunes an Observer. The zero value is usable: default ring
// size, bundles under os.TempDir()/sparker-bundles, 2s snapshots, 10s
// per-trigger cooldown, 3x regression factor.
type Config struct {
	// RingSize is the per-ring record capacity (driver and each
	// executor). 0 means DefaultRingSize.
	RingSize int
	// BundleDir receives postmortem bundle files. Empty means
	// <tmp>/sparker-bundles.
	BundleDir string
	// SnapshotInterval is the metric-snapshot period. 0 means 2s.
	SnapshotInterval time.Duration
	// Cooldown suppresses repeat dumps of the same trigger name. 0
	// means 10s; negative disables suppression.
	Cooldown time.Duration
	// RegressionFactor trips TriggerP99Regression when the windowed
	// step p99 exceeds factor x the rolling baseline. 0 means 3.0.
	RegressionFactor float64
	// RegressionMinSamples is the minimum windowed step count before a
	// window participates in regression detection. 0 means 64.
	RegressionMinSamples int64
	// MaxSnapshots bounds the retained pre-trigger snapshot history. 0
	// means 8.
	MaxSnapshots int
	// Triggers overrides the marker names that trip a dump; nil means
	// DefaultTriggers().
	Triggers []string
	// OnBundle, when set, is called from the monitor goroutine after
	// each bundle is written (test and CLI hook).
	OnBundle func(path string, b *Bundle)
}

func (c *Config) fill() {
	if c.BundleDir == "" {
		c.BundleDir = filepath.Join(os.TempDir(), "sparker-bundles")
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 2 * time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.RegressionFactor <= 0 {
		c.RegressionFactor = 3.0
	}
	if c.RegressionMinSamples <= 0 {
		c.RegressionMinSamples = 64
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 8
	}
	if c.Triggers == nil {
		c.Triggers = DefaultTriggers()
	}
}

// Geometry is the cluster shape captured in every bundle.
type Geometry struct {
	Name       string `json:"name,omitempty"`
	Executors  int    `json:"executors"`
	Cores      int    `json:"cores,omitempty"`
	ExecOfRank []int  `json:"exec_of_rank,omitempty"`
}

// MetricsSnapshot is one periodic sample of cluster health: windowed
// ring-step latency quantiles (since the previous snapshot), cumulative
// counters, and process resource stats.
type MetricsSnapshot struct {
	TimeNS     int64            `json:"t"`
	StepCount  int64            `json:"step_count"` // steps in this window
	StepP50NS  int64            `json:"step_p50_ns"`
	StepP99NS  int64            `json:"step_p99_ns"`
	CumSteps   int64            `json:"cum_steps"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	HeapAlloc  uint64           `json:"heap_alloc"`
	TotalAlloc uint64           `json:"total_alloc"`
	NumGC      uint32           `json:"num_gc"`
	Goroutines int              `json:"goroutines"`
}

// ExecDump is one executor's ring contents as collected into a bundle.
// Source records how it got there: "transport" when fetched by a
// collection stage over the live cluster, "in-process" when read
// directly (fallback when the cluster is too broken to run a stage).
type ExecDump struct {
	Exec   int      `json:"exec"`
	Source string   `json:"source"`
	Err    string   `json:"err,omitempty"`
	Ring   RingDump `json:"ring"`
}

// Binding connects an Observer to a live cluster: the geometry, a
// merged-metrics source, and a collector that fetches per-executor ring
// contents over the transport. Installed by rdd.NewContext.
type Binding struct {
	Cluster Geometry
	// Metrics returns the cluster-wide merged registry and the driver
	// recorder (counters). Called from the monitor goroutine.
	Metrics func() (*metrics.Registry, *metrics.Recorder)
	// CollectExecRings fetches every executor's ring dump, normally by
	// running a one-task-per-executor stage. Called from the monitor
	// goroutine; may be slow. Nil falls back to in-process snapshots.
	CollectExecRings func() []ExecDump
}

type tripReq struct {
	name, detail string
	timeNS       int64
}

// Observer owns the flight-recorder rings, watches for anomaly
// triggers, and serializes postmortem bundles from a dedicated monitor
// goroutine (so a trigger raised on the scheduler loop never blocks on
// a collection stage it would itself have to schedule). Nil-safe: all
// methods no-op on a nil *Observer.
type Observer struct {
	cfg      Config
	driver   *Ring
	triggers map[string]struct{}

	mu       sync.Mutex
	binding  Binding
	execs    []*Ring
	bound    bool
	lastTrip map[string]int64 // trigger name -> last dump UnixNano
	snaps    []MetricsSnapshot
	prevHist metrics.HistSnapshot
	baseline float64 // rolling EWMA of windowed step p99, ns
	bundles  []string
	quit     chan struct{}
	done     chan struct{}

	trips      chan tripReq
	enqueued   atomic.Int64
	processed  atomic.Int64
	suppressed atomic.Int64
}

// New returns an Observer with its driver ring allocated. It records
// immediately; anomaly dumps and periodic snapshots start at Bind.
func New(cfg Config) *Observer {
	cfg.fill()
	o := &Observer{
		cfg:      cfg,
		driver:   NewRing(cfg.RingSize),
		triggers: make(map[string]struct{}, len(cfg.Triggers)),
		lastTrip: map[string]int64{},
		trips:    make(chan tripReq, 16),
	}
	for _, t := range cfg.Triggers {
		o.triggers[t] = struct{}{}
	}
	return o
}

// DriverRing returns the driver-side ring (never nil on a live
// Observer; nil on a nil Observer, which is itself a valid no-op ring).
func (o *Observer) DriverRing() *Ring {
	if o == nil {
		return nil
	}
	return o.driver
}

// ExecRing returns executor i's ring, nil before Bind or out of range
// (a nil *Ring no-ops, so callers need no guard).
func (o *Observer) ExecRing(i int) *Ring {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if i < 0 || i >= len(o.execs) {
		return nil
	}
	return o.execs[i]
}

// Bind connects the Observer to a live cluster: allocates one ring per
// executor and starts the monitor goroutine (periodic snapshots,
// regression detection, bundle dumps). A second Bind replaces the
// binding. Unbind (or rdd Context.Close) stops the monitor.
func (o *Observer) Bind(b Binding) {
	if o == nil {
		return
	}
	o.Unbind()
	o.mu.Lock()
	o.binding = b
	o.execs = make([]*Ring, b.Cluster.Executors)
	for i := range o.execs {
		o.execs[i] = NewRing(o.cfg.RingSize)
	}
	o.bound = true
	o.quit = make(chan struct{})
	o.done = make(chan struct{})
	quit, done := o.quit, o.done
	o.mu.Unlock()
	// Synchronous first snapshot: any trigger raised after Bind is
	// guaranteed a pre-trigger metric snapshot in its bundle.
	o.snapshot()
	go o.monitor(quit, done)
}

// EnsureExecRings grows the per-executor ring table through n slots —
// the elastic-membership hook: a join that outgrows the boot executor
// count gets its own flight-recorder ring instead of silently dropping
// records (ExecRing would return nil for the new slot). Existing rings
// and their contents are untouched; shrinking never happens, a dead
// slot's ring stays readable for postmortems.
func (o *Observer) EnsureExecRings(n int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	for len(o.execs) < n {
		o.execs = append(o.execs, NewRing(o.cfg.RingSize))
	}
	o.mu.Unlock()
}

// Unbind stops the monitor goroutine, draining any queued trigger
// dumps first (their executor collection falls back in-process if the
// cluster is already gone). Rings keep their contents.
func (o *Observer) Unbind() {
	if o == nil {
		return
	}
	o.mu.Lock()
	if !o.bound {
		o.mu.Unlock()
		return
	}
	o.bound = false
	quit, done := o.quit, o.done
	o.mu.Unlock()
	close(quit)
	<-done
}

// Close is Unbind, for defer symmetry.
func (o *Observer) Close() { o.Unbind() }

// Marker records a marker into the driver ring and, when the name is a
// configured trigger, queues a postmortem dump. This is the tee target
// of rdd.Context.RecordMarker and the scheduler's marker path.
func (o *Observer) Marker(name, detail string) {
	if o == nil {
		return
	}
	o.driver.Marker(name, detail)
	if _, ok := o.triggers[name]; ok {
		o.trip(name, detail)
	}
}

// Phase records a coarse engine phase into the driver ring (the tee
// target of rdd.Context.RecordPhase).
func (o *Observer) Phase(name string, d time.Duration, detail string) {
	if o == nil {
		return
	}
	o.driver.Phase(name, d, detail)
}

// ExportSpan implements trace.Exporter: finished spans are retained in
// the flight recorder, routed to the owning executor's ring when the
// span carries an "exec" attribute (task spans do), otherwise to the
// driver ring.
func (o *Observer) ExportSpan(s trace.Span) {
	if o == nil {
		return
	}
	if v, ok := s.Attr("exec"); ok {
		if i, err := strconv.Atoi(v); err == nil {
			if r := o.ExecRing(i); r != nil {
				r.Span(s)
				return
			}
		}
	}
	o.driver.Span(s)
}

// Trip manually queues a postmortem dump (also the internal trigger
// path). Dumps are asynchronous — serialized by the monitor goroutine
// — and rate-limited per trigger name by Config.Cooldown.
func (o *Observer) Trip(name, detail string) {
	if o == nil {
		return
	}
	o.driver.Marker(name, detail)
	o.trip(name, detail)
}

func (o *Observer) trip(name, detail string) {
	now := time.Now().UnixNano()
	if o.cfg.Cooldown > 0 {
		o.mu.Lock()
		last := o.lastTrip[name]
		if now-last < int64(o.cfg.Cooldown) {
			o.mu.Unlock()
			o.suppressed.Add(1)
			return
		}
		o.lastTrip[name] = now
		o.mu.Unlock()
	}
	select {
	case o.trips <- tripReq{name: name, detail: detail, timeNS: now}:
		o.enqueued.Add(1)
	default:
		o.suppressed.Add(1)
	}
}

// Flush blocks until every queued trigger dump has been written (or
// the timeout elapses); reports whether the queue drained. CLIs call
// this before exit so chaos-induced bundles hit disk.
func (o *Observer) Flush(timeout time.Duration) bool {
	if o == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if o.processed.Load() >= o.enqueued.Load() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return o.processed.Load() >= o.enqueued.Load()
}

// Bundles returns the paths of every bundle written so far.
func (o *Observer) Bundles() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.bundles...)
}

// Status is the Observer's live state for /debug/sparker/obsv.
type Status struct {
	Bound         bool              `json:"bound"`
	RingSize      int               `json:"ring_size"`
	DriverRecords uint64            `json:"driver_records"`
	Executors     int               `json:"executors"`
	Triggers      []string          `json:"triggers"`
	BaselineP99NS int64             `json:"baseline_p99_ns"`
	Snapshots     int               `json:"snapshots"`
	LastSnapshot  *MetricsSnapshot  `json:"last_snapshot,omitempty"`
	Bundles       []string          `json:"bundles,omitempty"`
	Suppressed    int64             `json:"suppressed_trips"`
	LastTrip      map[string]string `json:"last_trip,omitempty"`
}

// Status snapshots the Observer for the debug plane.
func (o *Observer) Status() Status {
	if o == nil {
		return Status{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	st := Status{
		Bound:         o.bound,
		RingSize:      len(o.driver.recs),
		DriverRecords: o.driver.Snapshot().Total,
		Executors:     len(o.execs),
		Triggers:      append([]string(nil), o.cfg.Triggers...),
		BaselineP99NS: int64(o.baseline),
		Snapshots:     len(o.snaps),
		Bundles:       append([]string(nil), o.bundles...),
		Suppressed:    o.suppressed.Load(),
	}
	if n := len(o.snaps); n > 0 {
		last := o.snaps[n-1]
		st.LastSnapshot = &last
	}
	if len(o.lastTrip) > 0 {
		st.LastTrip = make(map[string]string, len(o.lastTrip))
		for k, v := range o.lastTrip {
			st.LastTrip[k] = time.Unix(0, v).Format(time.RFC3339Nano)
		}
	}
	return st
}

// --- monitor ----------------------------------------------------------

func (o *Observer) monitor(quit, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(o.cfg.SnapshotInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			o.snapshot()
		case tr := <-o.trips:
			o.dump(tr)
			o.processed.Add(1)
		case <-quit:
			for {
				select {
				case tr := <-o.trips:
					o.dump(tr)
					o.processed.Add(1)
				default:
					return
				}
			}
		}
	}
}

// snapshot takes one periodic metric sample, retains it, records it in
// the driver ring, and runs the p99-regression detector.
func (o *Observer) snapshot() {
	o.mu.Lock()
	met := o.binding.Metrics
	prev := o.prevHist
	o.mu.Unlock()

	var cur metrics.HistSnapshot
	var counters map[string]int64
	if met != nil {
		reg, rec := met()
		if reg != nil {
			cur = reg.Histogram(metrics.HistRingStepNS).Snapshot()
		}
		if rec != nil {
			counters = rec.Counters()
		}
	}
	delta := histDelta(cur, prev)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MetricsSnapshot{
		TimeNS:     time.Now().UnixNano(),
		StepCount:  delta.Count,
		StepP50NS:  delta.Quantile(0.5),
		StepP99NS:  delta.Quantile(0.99),
		CumSteps:   cur.Count,
		Counters:   counters,
		HeapAlloc:  ms.HeapAlloc,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
		Goroutines: runtime.NumGoroutine(),
	}
	o.driver.put(Record{
		TimeNS: snap.TimeNS, Kind: KindSnapshot,
		A: snap.StepCount, B: snap.StepP50NS, C: snap.StepP99NS, D: int64(snap.HeapAlloc),
	})

	var regress bool
	var base float64
	o.mu.Lock()
	o.prevHist = cur
	o.snaps = append(o.snaps, snap)
	if len(o.snaps) > o.cfg.MaxSnapshots {
		o.snaps = o.snaps[len(o.snaps)-o.cfg.MaxSnapshots:]
	}
	if delta.Count >= o.cfg.RegressionMinSamples {
		p99 := float64(snap.StepP99NS)
		base = o.baseline
		if base > 0 && p99 > o.cfg.RegressionFactor*base {
			regress = true
		}
		// EWMA update after the check so a regressed window cannot
		// launder itself into the baseline all at once.
		if o.baseline == 0 {
			o.baseline = p99
		} else {
			o.baseline = 0.7*o.baseline + 0.3*p99
		}
	}
	o.mu.Unlock()

	if regress {
		detail := fmt.Sprintf("windowed p99 %dns > %.1fx baseline %.0fns (n=%d)",
			snap.StepP99NS, o.cfg.RegressionFactor, base, snap.StepCount)
		o.driver.Marker(TriggerP99Regression, detail)
		// Already on the monitor goroutine: dump synchronously, but
		// still respect the cooldown bookkeeping.
		now := time.Now().UnixNano()
		o.mu.Lock()
		ok := o.cfg.Cooldown <= 0 || now-o.lastTrip[TriggerP99Regression] >= int64(o.cfg.Cooldown)
		if ok {
			o.lastTrip[TriggerP99Regression] = now
		}
		o.mu.Unlock()
		if ok {
			o.dump(tripReq{name: TriggerP99Regression, detail: detail, timeNS: now})
		} else {
			o.suppressed.Add(1)
		}
	}
}

// histDelta subtracts prev from cur bucket-wise, producing the
// windowed distribution between two cumulative snapshots. Min is
// unknowable for a window, so it is left 0; Quantile's clamp handles
// that.
func histDelta(cur, prev metrics.HistSnapshot) metrics.HistSnapshot {
	var d metrics.HistSnapshot
	d.Count = cur.Count - prev.Count
	d.Sum = cur.Sum - prev.Sum
	d.Max = cur.Max
	if d.Count <= 0 {
		return metrics.HistSnapshot{}
	}
	for i := range cur.Buckets {
		if b := cur.Buckets[i] - prev.Buckets[i]; b > 0 {
			d.Buckets[i] = b
		}
	}
	return d
}

// dump builds and writes one postmortem bundle.
func (o *Observer) dump(tr tripReq) {
	b := o.buildBundle(tr)
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		o.driver.Marker("obsv-bundle-error", err.Error())
		return
	}
	if err := os.MkdirAll(o.cfg.BundleDir, 0o755); err != nil {
		o.driver.Marker("obsv-bundle-error", err.Error())
		return
	}
	path := filepath.Join(o.cfg.BundleDir,
		fmt.Sprintf("bundle-%s-%d.json", sanitizeName(tr.name), tr.timeNS))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		o.driver.Marker("obsv-bundle-error", err.Error())
		return
	}
	o.mu.Lock()
	o.bundles = append(o.bundles, path)
	o.mu.Unlock()
	if o.cfg.OnBundle != nil {
		o.cfg.OnBundle(path, b)
	}
}

func (o *Observer) buildBundle(tr tripReq) *Bundle {
	o.mu.Lock()
	bind := o.binding
	snaps := append([]MetricsSnapshot(nil), o.snaps...)
	baseline := int64(o.baseline)
	execs := append([]*Ring(nil), o.execs...)
	o.mu.Unlock()

	b := &Bundle{
		Version:       BundleVersion,
		Trigger:       Trigger{Name: tr.name, Detail: tr.detail, TimeNS: tr.timeNS},
		WrittenNS:     time.Now().UnixNano(),
		Cluster:       bind.Cluster,
		BaselineP99NS: baseline,
		Snapshots:     snaps,
	}
	if bind.Metrics != nil {
		if _, rec := bind.Metrics(); rec != nil {
			b.Counters = rec.Counters()
		}
	}
	// Executor rings: over the transport when the cluster can still run
	// a stage, falling back to reading the driver-resident rings
	// directly (same process in this reproduction) when it cannot.
	if bind.CollectExecRings != nil {
		b.Executors = bind.CollectExecRings()
	}
	if b.Executors == nil {
		for i, r := range execs {
			b.Executors = append(b.Executors, ExecDump{Exec: i, Source: "in-process", Ring: r.Snapshot()})
		}
	}
	// Driver ring last so it includes any markers the collection
	// itself recorded.
	b.Driver = o.driver.Snapshot()
	return b
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, s)
}
