package obsv

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/trace"
)

func TestRingWrapAndSnapshot(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Step("step", int64(i), 0, uint32(i), 0, i)
	}
	d := r.Snapshot()
	if d.Total != 7 || d.Dropped != 3 || len(d.Records) != 4 {
		t.Fatalf("dump total=%d dropped=%d len=%d, want 7/3/4", d.Total, d.Dropped, len(d.Records))
	}
	for i, rec := range d.Records {
		if want := int64(3 + i); rec.A != want {
			t.Fatalf("record %d has A=%d, want %d (oldest-first)", i, rec.A, want)
		}
	}
	if r.LastEpoch() != 6 {
		t.Fatalf("LastEpoch=%d, want 6", r.LastEpoch())
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Step("x", 1, 2, 3, 0, 0)
	r.Marker("m", "")
	r.Phase("p", time.Second, "")
	r.Span(trace.Span{})
	r.Profile("pr", "", 0, 0, 0, 0)
	if d := r.Snapshot(); d.Total != 0 || len(d.Records) != 0 {
		t.Fatalf("nil ring snapshot not empty: %+v", d)
	}
	var o *Observer
	o.Marker("ring-fallback", "")
	o.Phase("driver", time.Second, "")
	o.ExportSpan(trace.Span{})
	o.Bind(Binding{})
	o.Unbind()
	if !o.Flush(time.Millisecond) {
		t.Fatal("nil observer Flush should report drained")
	}
}

func TestStepRecordAllocFree(t *testing.T) {
	r := NewRing(64)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Step("reduce-scatter", 1234, 4096, 7, 1, 2)
	}); allocs != 0 {
		t.Fatalf("Ring.Step allocates %.1f per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Marker("ring-fallback", "cause")
	}); allocs != 0 {
		t.Fatalf("Ring.Marker allocates %.1f per op, want 0", allocs)
	}
}

// fakeBinding returns a binding over a private registry/recorder pair.
func fakeBinding(execs int) (Binding, *metrics.Registry, *metrics.Recorder) {
	reg := metrics.NewRegistry()
	rec := metrics.NewRecorder()
	return Binding{
		Cluster: Geometry{Name: "test", Executors: execs, Cores: 2},
		Metrics: func() (*metrics.Registry, *metrics.Recorder) { return reg, rec },
	}, reg, rec
}

func TestMarkerTriggerProducesValidBundle(t *testing.T) {
	dir := t.TempDir()
	o := New(Config{BundleDir: dir, SnapshotInterval: time.Hour})
	bind, _, rec := fakeBinding(2)
	o.Bind(bind)
	defer o.Unbind()

	// A correlated span pair routed to an executor ring and the driver.
	o.ExportSpan(trace.Span{TraceID: 9, SpanID: 10, Name: "stage", Start: 1, End: 2})
	o.ExportSpan(trace.Span{
		TraceID: 9, SpanID: 11, ParentID: 10, Name: "task", Start: 2, End: 3,
		Attrs: []trace.Attr{{Key: "exec", Val: "1"}},
	})
	rec.Inc(metrics.CounterRingFallback)
	o.Marker(metrics.CounterRingFallback, "rank 1: peer failure")
	if !o.Flush(5 * time.Second) {
		t.Fatal("trip queue did not drain")
	}
	paths := o.Bundles()
	if len(paths) != 1 {
		t.Fatalf("got %d bundles, want 1: %v", len(paths), paths)
	}
	if base := filepath.Base(paths[0]); !strings.HasPrefix(base, "bundle-ring-fallback-") {
		t.Fatalf("unexpected bundle filename %q", base)
	}
	b, err := Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("bundle invalid: %v", err)
	}
	if b.Trigger.Name != metrics.CounterRingFallback || b.Trigger.Detail == "" {
		t.Fatalf("bad trigger %+v", b.Trigger)
	}
	if b.Counters[metrics.CounterRingFallback] != 1 {
		t.Fatalf("counters not captured: %v", b.Counters)
	}
	if len(b.Executors) != 2 || b.Executors[1].Ring.Total != 1 {
		t.Fatalf("executor rings not collected: %+v", b.Executors)
	}
	if b.Executors[0].Source != "in-process" {
		t.Fatalf("fallback collection source = %q", b.Executors[0].Source)
	}
	if len(b.Snapshots) == 0 || b.Snapshots[0].TimeNS > b.Trigger.TimeNS {
		t.Fatalf("missing pre-trigger snapshot: %+v", b.Snapshots)
	}
}

func TestCooldownSuppressesRepeatDumps(t *testing.T) {
	o := New(Config{BundleDir: t.TempDir(), SnapshotInterval: time.Hour, Cooldown: time.Hour})
	bind, _, _ := fakeBinding(1)
	o.Bind(bind)
	defer o.Unbind()
	o.ExportSpan(trace.Span{TraceID: 1, SpanID: 2, ParentID: 3, Name: "s"})
	for i := 0; i < 5; i++ {
		o.Marker(metrics.CounterPeerFailure, "again")
	}
	if !o.Flush(5 * time.Second) {
		t.Fatal("trip queue did not drain")
	}
	if got := len(o.Bundles()); got != 1 {
		t.Fatalf("cooldown allowed %d bundles, want 1", got)
	}
	if o.Status().Suppressed != 4 {
		t.Fatalf("suppressed = %d, want 4", o.Status().Suppressed)
	}
}

func TestNonTriggerMarkerDoesNotDump(t *testing.T) {
	o := New(Config{BundleDir: t.TempDir(), SnapshotInterval: time.Hour})
	bind, _, _ := fakeBinding(1)
	o.Bind(bind)
	defer o.Unbind()
	o.Marker("spec-won", "benign")
	o.Flush(time.Second)
	if got := len(o.Bundles()); got != 0 {
		t.Fatalf("benign marker produced %d bundles", got)
	}
}

func TestP99RegressionTrips(t *testing.T) {
	o := New(Config{
		BundleDir:            t.TempDir(),
		SnapshotInterval:     time.Hour, // snapshots driven manually
		RegressionMinSamples: 8,
		RegressionFactor:     3,
	})
	bind, reg, _ := fakeBinding(1)
	o.mu.Lock()
	o.binding = bind
	o.mu.Unlock()
	o.ExportSpan(trace.Span{TraceID: 1, SpanID: 2, ParentID: 3, Name: "s"})

	h := reg.Histogram(metrics.HistRingStepNS)
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	o.snapshot() // establishes the baseline window
	for i := 0; i < 100; i++ {
		h.Observe(1100)
	}
	o.snapshot() // healthy window, no trip
	if got := len(o.Bundles()); got != 0 {
		t.Fatalf("healthy window tripped: %d bundles", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20)
	}
	o.snapshot() // ~1000x regression
	paths := o.Bundles()
	if len(paths) != 1 {
		t.Fatalf("regression produced %d bundles, want 1", len(paths))
	}
	b, err := Load(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("regression bundle invalid: %v", err)
	}
	if b.Trigger.Name != TriggerP99Regression {
		t.Fatalf("trigger = %q", b.Trigger.Name)
	}
	if b.BaselineP99NS == 0 {
		t.Fatal("bundle lost the rolling baseline")
	}
}

func TestValidateRejectsBrokenBundles(t *testing.T) {
	mk := func() *Bundle {
		return &Bundle{
			Version: BundleVersion,
			Trigger: Trigger{Name: "ring-fallback", TimeNS: 100},
			Driver: RingDump{Records: []Record{
				{TimeNS: 90, Kind: KindMarker, Name: "ring-fallback"},
				{TimeNS: 80, Kind: KindSpan, Name: "task", B: 1, C: 2, D: 3},
			}},
			Snapshots: []MetricsSnapshot{{TimeNS: 50}},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("baseline bundle should validate: %v", err)
	}
	b := mk()
	b.Version = 99
	if b.Validate() == nil {
		t.Fatal("wrong version accepted")
	}
	b = mk()
	b.Driver.Records = b.Driver.Records[1:] // drop the marker
	if b.Validate() == nil {
		t.Fatal("missing trigger marker accepted")
	}
	b = mk()
	b.Driver.Records = b.Driver.Records[:1] // drop the span
	if b.Validate() == nil {
		t.Fatal("missing correlated span accepted")
	}
	b = mk()
	b.Snapshots = []MetricsSnapshot{{TimeNS: 200}} // post-trigger only
	if b.Validate() == nil {
		t.Fatal("missing pre-trigger snapshot accepted")
	}
}

func TestAllRecordsMergesSorted(t *testing.T) {
	b := &Bundle{
		Driver: RingDump{Records: []Record{{TimeNS: 5}, {TimeNS: 20}}},
		Executors: []ExecDump{
			{Exec: 0, Ring: RingDump{Records: []Record{{TimeNS: 10}}}},
			{Exec: 1, Ring: RingDump{Records: []Record{{TimeNS: 1}}}},
		},
	}
	all := b.AllRecords()
	if len(all) != 4 {
		t.Fatalf("len=%d", len(all))
	}
	wantT := []int64{1, 5, 10, 20}
	wantE := []int{1, -1, 0, -1}
	for i := range all {
		if all[i].TimeNS != wantT[i] || all[i].Exec != wantE[i] {
			t.Fatalf("record %d = (t=%d exec=%d), want (t=%d exec=%d)",
				i, all[i].TimeNS, all[i].Exec, wantT[i], wantE[i])
		}
	}
}

func BenchmarkRingStep(b *testing.B) {
	r := NewRing(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Step("reduce-scatter", 1000, 4096, 7, 0, i)
	}
}
