// Package sim is the model layer: it replays Sparker's communication
// schedules on the vclock/netsim discrete-event substrate at the
// paper's cluster scales (Table 1: BIC, 8×56-core nodes on 100Gb
// IPoIB; AWS, 10×96-core m5d.24xlarge on 25GbE), calibrated with the
// constants the paper itself measured (Figures 12–13). Every
// experiment in Section 5 has a runner here; absolute seconds are
// calibrated, shapes (who wins, crossovers, scaling trends) emerge from
// the simulated schedules.
package sim

import (
	"time"

	"sparker/internal/netsim"
	"sparker/internal/vclock"
)

// Transport is one communication mechanism's calibration.
type Transport struct {
	// Name labels the mechanism ("SC", "MPI", "BM").
	Name string
	// Latency is the one-way small-message latency.
	Latency time.Duration
	// StreamBW caps a single connection, bytes/s.
	StreamBW float64
	// NICBW caps a node's aggregate rate, bytes/s.
	NICBW float64
}

// ClusterConfig is one Table-1 cluster plus engine cost calibration.
type ClusterConfig struct {
	Name             string
	Nodes            int
	ExecutorsPerNode int
	CoresPerExecutor int

	// SC, MPI and BM are the three transports of Figure 12.
	SC, MPI, BM Transport

	// Intra-node path.
	IntraLatency time.Duration
	IntraBW      float64

	// Engine cost model, bytes/s per core. These are JVM-path rates:
	// the ring thread's receive+deserialize+merge path is far below
	// memory bandwidth (the paper's Figure 14 shows 256MB needing ~1s
	// of per-executor processing even with the network clear), while
	// MPI's native reduction runs at memcpy-like speed.
	SerRate      float64 // serialize aggregator -> bytes (Kryo-ish)
	DeserRate    float64 // bytes -> aggregator at the driver
	MergeRate    float64 // elementwise merge of deserialized aggregators
	RingProcRate float64 // ring thread recv+merge, per channel thread
	MPIProcRate  float64 // native MPI per-rank reduction
	CopyRate     float64 // splitOp/concatOp memcpy

	// TaskOverhead is the driver-side cost of dispatching and handling
	// one task; StageOverhead the fixed cost of launching a stage. A
	// stage with n tasks charges StageOverhead + n·TaskOverhead.
	TaskOverhead  time.Duration
	StageOverhead time.Duration
}

const mb = 1024 * 1024

// BIC is the in-house cluster: 8 nodes × 56 logical cores, 100Gbps
// IPoIB, 6 executors × 4 cores per node. Transport constants are the
// paper's own measurements: MPI 15.94µs / 1185.43 MB/s, SC 72.73µs /
// 1151.80 MB/s, BM 3861.25µs.
func BIC() ClusterConfig {
	return ClusterConfig{
		Name:             "BIC",
		Nodes:            8,
		ExecutorsPerNode: 6,
		CoresPerExecutor: 4,
		SC: Transport{
			Name:    "SC",
			Latency: time.Duration(72.73 * float64(time.Microsecond)),
			// Figure 13: one socket pair cannot saturate IPoIB; ≥4
			// parallel channels approach the 1151.80 MB/s line rate.
			StreamBW: 400 * mb,
			NICBW:    1151.80 * mb,
		},
		MPI: Transport{
			Name:     "MPI",
			Latency:  time.Duration(15.94 * float64(time.Microsecond)),
			StreamBW: 1185.43 * mb,
			NICBW:    1185.43 * mb,
		},
		BM: Transport{
			// The BlockManager path bundles block registration, queue
			// polling and fetch round-trips; its measured effective
			// latency is 3861.25µs.
			Name:     "BM",
			Latency:  time.Duration(3861.25 * float64(time.Microsecond)),
			StreamBW: 300 * mb,
			NICBW:    1151.80 * mb,
		},
		// Executors on one node still talk over loopback TCP through
		// the JVM stack, so intra latency matches the measured SC
		// latency; the memory fabric is shared per node.
		IntraLatency: 70 * time.Microsecond,
		IntraBW:      2.5e9,

		SerRate:      1.0e9,
		DeserRate:    1.2e9,
		MergeRate:    2.5e9,
		RingProcRate: 80 * mb,
		MPIProcRate:  4e9,
		CopyRate:     4.0e9,

		TaskOverhead:  time.Millisecond,
		StageOverhead: 120 * time.Millisecond,
	}
}

// AWS is the EC2 cluster: 10 × m5d.24xlarge (96 logical cores), 25Gbps
// Ethernet, 12 executors × 8 cores per node.
func AWS() ClusterConfig {
	return ClusterConfig{
		Name:             "AWS",
		Nodes:            10,
		ExecutorsPerNode: 12,
		CoresPerExecutor: 8,
		SC: Transport{
			Name:     "SC",
			Latency:  55 * time.Microsecond,
			StreamBW: 600 * mb,
			NICBW:    2.8e9, // ≈ 25Gb/s line rate less TCP overhead
		},
		MPI: Transport{
			Name:     "MPI",
			Latency:  18 * time.Microsecond,
			StreamBW: 2.9e9,
			NICBW:    2.9e9,
		},
		BM: Transport{
			Name:     "BM",
			Latency:  3200 * time.Microsecond,
			StreamBW: 400 * mb,
			NICBW:    2.8e9,
		},
		IntraLatency: 55 * time.Microsecond,
		IntraBW:      3.5e9,

		SerRate:      1.2e9,
		DeserRate:    1.4e9,
		MergeRate:    2.8e9,
		RingProcRate: 95 * mb,
		MPIProcRate:  4.5e9,
		CopyRate:     5.0e9,

		TaskOverhead:  time.Millisecond,
		StageOverhead: 120 * time.Millisecond,
	}
}

// Executors returns the cluster-wide executor count.
func (c ClusterConfig) Executors() int { return c.Nodes * c.ExecutorsPerNode }

// TotalCores returns the cluster-wide core count.
func (c ClusterConfig) TotalCores() int { return c.Executors() * c.CoresPerExecutor }

// WithNodes returns a copy restricted to n nodes (strong-scaling runs).
func (c ClusterConfig) WithNodes(n int) ClusterConfig {
	c.Nodes = n
	return c
}

// network builds the netsim fabric for a transport over the first
// `nodes` nodes of the cluster, with executorsPerNode overridable for
// experiments that shrink executors (Figure 18's 4-core runs).
func (c ClusterConfig) network(e *vclock.Engine, t Transport, nodes, executorsPerNode int) (*netsim.Network, error) {
	return netsim.New(e, netsim.Params{
		Nodes:            nodes,
		ExecutorsPerNode: executorsPerNode,
		InterLatency:     t.Latency,
		NICBandwidth:     t.NICBW,
		StreamBandwidth:  t.StreamBW,
		IntraLatency:     c.IntraLatency,
		IntraBandwidth:   c.IntraBW,
	})
}
