package sim

import (
	"fmt"
	"math/bits"
	"time"

	"sparker/internal/netsim"
	"sparker/internal/vclock"
)

// RSParams parameterizes a simulated reduce-scatter (Figures 14–15).
type RSParams struct {
	Cluster ClusterConfig
	// Nodes restricts the run to the first Nodes nodes (executors =
	// Nodes × ExecutorsPerNode).
	Nodes int
	// MsgBytes is the per-executor aggregator size.
	MsgBytes int64
	// Parallelism is the PDR channel count (SC only).
	Parallelism int
	// TopoAware orders ring ranks by host (SC only).
	TopoAware bool
}

func (p RSParams) validate() error {
	if p.Nodes < 1 || p.Nodes > p.Cluster.Nodes {
		return fmt.Errorf("sim: nodes %d out of range [1,%d]", p.Nodes, p.Cluster.Nodes)
	}
	if p.MsgBytes <= 0 {
		return fmt.Errorf("sim: message size must be positive")
	}
	if p.Parallelism < 1 {
		return fmt.Errorf("sim: parallelism must be >= 1")
	}
	return nil
}

// rankPlacement maps ring rank -> executor id. Topology-aware ranks
// walk executors node by node (hostname-sorted); the unsorted baseline
// reproduces a round-robin scheduler registration order, which makes
// nearly every ring hop cross nodes.
func rankPlacement(executors, nodes, perNode int, topoAware bool) []int {
	perm := make([]int, executors)
	if topoAware {
		for r := range perm {
			perm[r] = r
		}
		return perm
	}
	for r := range perm {
		node := r % nodes
		slot := r / nodes
		perm[r] = node*perNode + slot
	}
	return perm
}

// RingReduceScatter simulates the scalable communicator's PDR ring
// reduce-scatter and returns its completion time.
func RingReduceScatter(p RSParams) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	c := p.Cluster
	eng := vclock.New()
	net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	e := net.Executors()
	if e == 1 {
		return 0, nil
	}
	perm := rankPlacement(e, p.Nodes, c.ExecutorsPerNode, p.TopoAware)

	// One mailbox per (rank, channel).
	boxes := make([][]*vclock.Mailbox[int], e)
	for r := range boxes {
		boxes[r] = make([]*vclock.Mailbox[int], p.Parallelism)
		for ch := range boxes[r] {
			boxes[r][ch] = vclock.NewMailbox[int](eng)
		}
	}
	seg := p.MsgBytes / int64(p.Parallelism*e)
	if seg < 1 {
		seg = 1
	}
	// Each PDR channel is one thread doing recv+merge at RingProcRate.
	// Threads beyond the executor's core count time-share.
	procRate := c.RingProcRate
	if p.Parallelism > c.CoresPerExecutor {
		procRate *= float64(c.CoresPerExecutor) / float64(p.Parallelism)
	}
	mergeCost := time.Duration(float64(seg) / procRate * float64(time.Second))

	for r := 0; r < e; r++ {
		for ch := 0; ch < p.Parallelism; ch++ {
			r, ch := r, ch
			eng.Go(func(pr *vclock.Proc) {
				next := (r + 1) % e
				for k := 0; k < e-1; k++ {
					netsim.Send(net, pr, boxes[next][ch], perm[r], perm[next], seg, k)
					boxes[r][ch].Recv(pr)
					pr.Sleep(mergeCost)
				}
			})
		}
	}
	return eng.Run()
}

// mpiLongMessageThreshold is the per-segment size at which the modeled
// MPICH switches from its short-vector fallback to pairwise exchange.
const mpiLongMessageThreshold = 32 * 1024

// MPIReduceScatter simulates the MPI reference of Figure 15, following
// MPICH's protocol switch (Thakur, Rabenseifner & Gropp): pairwise
// exchange for long messages (bandwidth-optimal; the "ideal reference"
// the paper compares against), and for short messages the fallback the
// paper calls "a sub-optimal algorithm, leading to worse scalability":
// a binomial-tree reduce of the full vector to rank 0 plus a
// root-serialized scatterv with a rendezvous handshake per destination.
func MPIReduceScatter(p RSParams) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	c := p.Cluster
	e := c.ExecutorsPerNode * p.Nodes
	if p.MsgBytes/int64(e) >= mpiLongMessageThreshold {
		return mpiPairwiseReduceScatter(p)
	}
	return mpiReduceScatterv(p)
}

// mpiPairwiseReduceScatter: N-1 rounds; in round k rank r sends segment
// (r+k) mod N to its owner and merges the segment received from
// (r-k+N) mod N at native speed.
func mpiPairwiseReduceScatter(p RSParams) (time.Duration, error) {
	c := p.Cluster
	eng := vclock.New()
	net, err := c.network(eng, c.MPI, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	e := net.Executors()
	if e == 1 {
		return 0, nil
	}
	boxes := make([]*vclock.Mailbox[int], e)
	for r := range boxes {
		boxes[r] = vclock.NewMailbox[int](eng)
	}
	seg := p.MsgBytes / int64(e)
	mergeCost := time.Duration(float64(seg) / c.MPIProcRate * float64(time.Second))
	for r := 0; r < e; r++ {
		r := r
		eng.Go(func(pr *vclock.Proc) {
			for k := 1; k < e; k++ {
				dst := (r + k) % e
				netsim.Send(net, pr, boxes[dst], r, dst, seg, k)
				boxes[r].Recv(pr)
				pr.Sleep(mergeCost)
			}
		})
	}
	return eng.Run()
}

// mpiReduceScatterv is the short-message fallback.
func mpiReduceScatterv(p RSParams) (time.Duration, error) {
	c := p.Cluster
	eng := vclock.New()
	net, err := c.network(eng, c.MPI, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	e := net.Executors()
	if e == 1 {
		return 0, nil
	}
	// MPI launchers place ranks host-ordered.
	boxes := make([]*vclock.Mailbox[int], e)   // reduce traffic
	scatter := make([]*vclock.Mailbox[int], e) // scatterv traffic
	for r := range boxes {
		boxes[r] = vclock.NewMailbox[int](eng)
		scatter[r] = vclock.NewMailbox[int](eng)
	}
	mergeCost := time.Duration(float64(p.MsgBytes) / c.MPIProcRate * float64(time.Second))
	rounds := bits.Len(uint(e - 1)) // ceil(log2(e))
	// Rendezvous handshake per scatterv destination: request + ack
	// before the payload moves.
	handshake := 2 * c.MPI.Latency

	for r := 0; r < e; r++ {
		r := r
		eng.Go(func(pr *vclock.Proc) {
			// Binomial reduce to rank 0: in round j, ranks with low j
			// bits zero and bit j set send to r - 2^j.
			for j := 0; j < rounds; j++ {
				bit := 1 << j
				if r&(bit-1) != 0 {
					return // already sent in an earlier round
				}
				if r&bit != 0 {
					netsim.Send(net, pr, boxes[r-bit], r, r-bit, p.MsgBytes, j)
					break
				}
				src := r + bit
				if src < e {
					boxes[r].Recv(pr)
					pr.Sleep(mergeCost)
				}
			}
			if r != 0 {
				return
			}
			// Scatterv: root pushes each rank its segment; its NIC
			// serializes the sends.
			segBytes := p.MsgBytes / int64(e)
			for dst := 1; dst < e; dst++ {
				pr.Sleep(handshake)
				netsim.Send(net, pr, scatter[dst], 0, dst, segBytes, dst)
			}
		})
	}
	// Every non-root rank consumes its scattered segment.
	for r := 1; r < e; r++ {
		r := r
		eng.Go(func(pr *vclock.Proc) {
			scatter[r].Recv(pr)
		})
	}
	return eng.Run()
}
