package sim

import (
	"fmt"
	"time"

	"sparker/internal/netsim"
	"sparker/internal/vclock"
)

// P2PLatency reproduces Figure 12: the one-way small-message latency
// between a pair of executors on different nodes, per transport. It is
// measured as half the simulated ping-pong round trip of an 8-byte
// payload.
func P2PLatency(c ClusterConfig, t Transport) (time.Duration, error) {
	if c.Nodes < 2 {
		return 0, fmt.Errorf("sim: p2p latency needs 2 nodes")
	}
	e := vclock.New()
	net, err := c.network(e, t, 2, 1)
	if err != nil {
		return 0, err
	}
	const rounds = 10
	ping := vclock.NewMailbox[int](e)
	pong := vclock.NewMailbox[int](e)
	e.Go(func(p *vclock.Proc) {
		for i := 0; i < rounds; i++ {
			netsim.Send(net, p, ping, 0, 1, 8, i)
			pong.Recv(p)
		}
	})
	e.Go(func(p *vclock.Proc) {
		for i := 0; i < rounds; i++ {
			ping.Recv(p)
			netsim.Send(net, p, pong, 1, 0, 8, i)
		}
	})
	total, err := e.Run()
	if err != nil {
		return 0, err
	}
	return total / (2 * rounds), nil
}

// P2PThroughput reproduces Figure 13: the throughput (bytes/s) between
// a pair of executors when a message of msgBytes is striped over
// `parallelism` connections.
func P2PThroughput(c ClusterConfig, t Transport, msgBytes int64, parallelism int) (float64, error) {
	if parallelism < 1 {
		return 0, fmt.Errorf("sim: parallelism must be >= 1")
	}
	e := vclock.New()
	net, err := c.network(e, t, 2, 1)
	if err != nil {
		return 0, err
	}
	g := vclock.NewGroup(e)
	for ch := 0; ch < parallelism; ch++ {
		ch := ch
		g.Go(func(p *vclock.Proc) {
			part := msgBytes / int64(parallelism)
			if ch == 0 {
				part += msgBytes % int64(parallelism)
			}
			net.Transfer(p, 0, 1, part)
		})
	}
	e.Go(func(p *vclock.Proc) { g.Wait(p) })
	total, err := e.Run()
	if err != nil {
		return 0, err
	}
	if total <= 0 {
		return 0, fmt.Errorf("sim: zero transfer time")
	}
	return float64(msgBytes) / total.Seconds(), nil
}
