package sim

import (
	"time"

	"sparker/internal/vclock"
)

// Ablations isolate the design choices stacked inside split
// aggregation, checking the paper's §5.2.3 claim that "although
// in-memory merge contributes to split aggregation's improvement, most
// of the improvement comes from the scalable reduction".

// SplitNoIMMTime simulates split aggregation with in-memory merge
// disabled: every task result is serialized as in vanilla Spark; the
// SpawnRDD task then loads and merges its executor's local results
// before splitting and ring-reducing. Isolates the scalable-reduction
// contribution.
func SplitNoIMMTime(p AggParams) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	c := p.Cluster
	m := p.MsgBytes
	par := p.Parallelism
	if par < 1 {
		par = 4
	}
	e := p.Nodes * c.ExecutorsPerNode
	cores := c.CoresPerExecutor

	// Stage 1: every core serializes its task result (parallel).
	total := seconds(m, c.SerRate) + stageCost(c, e*cores)
	// SpawnRDD: deserialize + merge the executor's cores-many local
	// results serially, then split.
	total += time.Duration(cores) * (seconds(m, c.DeserRate) + seconds(m, c.MergeRate))
	total += seconds(m, c.CopyRate)
	ring, err := RingReduceScatter(RSParams{
		Cluster: c, Nodes: p.Nodes, MsgBytes: m,
		Parallelism: par, TopoAware: p.TopoAware,
	})
	if err != nil {
		return 0, err
	}
	total += ring
	gather, err := splitGatherTime(p, e)
	if err != nil {
		return 0, err
	}
	return total + gather + stageCost(c, e), nil
}

// splitGatherTime is the driver gather + concat phase shared by the
// split variants.
func splitGatherTime(p AggParams, e int) (time.Duration, error) {
	c := p.Cluster
	eng := vclock.New()
	net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	seg := p.MsgBytes / int64(e)
	g := vclock.NewGroup(eng)
	for i := 0; i < e; i++ {
		i := i
		g.Go(func(pr *vclock.Proc) {
			net.Transfer(pr, i, 0-1, seg) // netsim.Driver == -1
		})
	}
	eng.Go(func(pr *vclock.Proc) {
		g.Wait(pr)
		pr.Sleep(seconds(p.MsgBytes, c.DeserRate) +
			seconds(p.MsgBytes, c.CopyRate) +
			time.Duration(e)*c.TaskOverhead)
	})
	return eng.Run()
}

// SplitAllReduceTime simulates the allreduce extension: IMM + ring
// reduce-scatter + ring allgather, with only one executor returning a
// copy to the driver — no serial driver merge at all.
func SplitAllReduceTime(p AggParams) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	c := p.Cluster
	par := p.Parallelism
	if par < 1 {
		par = 4
	}
	e := p.Nodes * c.ExecutorsPerNode
	total := immMergeTime(c)(p.MsgBytes) + stageCost(c, e*c.CoresPerExecutor)
	total += seconds(p.MsgBytes, c.CopyRate)
	// Reduce-scatter, then allgather: the allgather moves the same
	// volume over the same ring, so its simulated schedule matches the
	// reduce-scatter's with merge replaced by a memcpy-speed store.
	rs, err := RingReduceScatter(RSParams{
		Cluster: c, Nodes: p.Nodes, MsgBytes: p.MsgBytes,
		Parallelism: par, TopoAware: p.TopoAware,
	})
	if err != nil {
		return 0, err
	}
	agCluster := c
	agCluster.RingProcRate = c.CopyRate // allgather only copies
	ag, err := RingReduceScatter(RSParams{
		Cluster: agCluster, Nodes: p.Nodes, MsgBytes: p.MsgBytes,
		Parallelism: par, TopoAware: p.TopoAware,
	})
	if err != nil {
		return 0, err
	}
	total += rs + ag
	// One executor ships the result to the driver.
	eng := vclock.New()
	net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	eng.Go(func(pr *vclock.Proc) {
		net.Transfer(pr, 0, -1, p.MsgBytes)
		pr.Sleep(seconds(p.MsgBytes, c.DeserRate))
	})
	d, err := eng.Run()
	if err != nil {
		return 0, err
	}
	return total + d + stageCost(c, e), nil
}

// SegmentReductionAlgorithm compares reduction algorithms over the
// same splittable segments: the interface admits any of them (§7),
// and the ablation shows why Sparker picked the ring.
type SegmentReductionAlgorithm string

// Algorithms compared by ReduceAlgorithmTime.
const (
	AlgoRing     SegmentReductionAlgorithm = "ring"
	AlgoPairwise SegmentReductionAlgorithm = "pairwise"
	AlgoHalving  SegmentReductionAlgorithm = "reduce+scatterv"
)

// ReduceAlgorithmTime times one segment-reduction algorithm on the SC
// transport (same latency/bandwidth, same JVM processing rate), so the
// comparison isolates the algorithm.
func ReduceAlgorithmTime(algo SegmentReductionAlgorithm, p RSParams) (time.Duration, error) {
	switch algo {
	case AlgoRing:
		return RingReduceScatter(p)
	case AlgoPairwise:
		cl := p.Cluster
		cl.MPI = cl.SC // same transport, different algorithm
		cl.MPIProcRate = cl.RingProcRate
		p.Cluster = cl
		return mpiPairwiseReduceScatter(p)
	case AlgoHalving:
		cl := p.Cluster
		cl.MPI = cl.SC
		cl.MPIProcRate = cl.RingProcRate
		p.Cluster = cl
		return mpiReduceScatterv(p)
	default:
		return 0, errUnknownAlgo(string(algo))
	}
}

type errUnknownAlgo string

func (e errUnknownAlgo) Error() string {
	return "sim: unknown reduction algorithm " + string(e)
}
