package sim

import (
	"fmt"
	"math/bits"
	"time"

	"sparker/internal/netsim"
	"sparker/internal/vclock"
)

// AggStrategy labels the three aggregation implementations of Figure 16.
type AggStrategy int

// Aggregation strategies.
const (
	AggTree AggStrategy = iota
	AggTreeIMM
	AggSplit
)

// String implements fmt.Stringer.
func (s AggStrategy) String() string {
	switch s {
	case AggTree:
		return "tree"
	case AggTreeIMM:
		return "tree+imm"
	case AggSplit:
		return "split"
	default:
		return fmt.Sprintf("AggStrategy(%d)", int(s))
	}
}

// AggParams parameterizes one simulated aggregation (the reduction
// path of the Figure-16 micro-benchmark: the RDD is preloaded in
// memory, seqOp is trivial, the aggregator is MsgBytes).
type AggParams struct {
	Cluster ClusterConfig
	Nodes   int
	// MsgBytes is the aggregator size.
	MsgBytes int64
	// Parallelism is the split-aggregation PDR channel count.
	Parallelism int
	// TopoAware orders ring ranks by host.
	TopoAware bool
}

func (p AggParams) validate() error {
	if p.Nodes < 1 || p.Nodes > p.Cluster.Nodes {
		return fmt.Errorf("sim: nodes %d out of range [1,%d]", p.Nodes, p.Cluster.Nodes)
	}
	if p.MsgBytes <= 0 {
		return fmt.Errorf("sim: message size must be positive")
	}
	return nil
}

// AggregateTime simulates one aggregation under the given strategy and
// returns its duration (Spark stages are barriers, so phases sum).
func AggregateTime(s AggStrategy, p AggParams) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	switch s {
	case AggTree:
		return treeAggTime(p)
	case AggTreeIMM:
		return treeIMMAggTime(p)
	case AggSplit:
		return splitAggTime(p)
	default:
		return 0, fmt.Errorf("sim: unknown strategy %d", int(s))
	}
}

// seconds converts a byte count over a rate into a duration.
func seconds(bytes int64, rate float64) time.Duration {
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}

// stageCost is the driver's scheduling cost for a stage of n tasks.
func stageCost(c ClusterConfig, tasks int) time.Duration {
	return c.StageOverhead + time.Duration(tasks)*c.TaskOverhead
}

// treeScale is Spark's treeAggregate combiner factor for depth 2.
func treeScale(parts int) int {
	s := 1
	for s*s < parts {
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}

// treeCombinePhases simulates treeAggregate's reduction over `cur`
// serialized blocks of m bytes placed round-robin on E executors:
// shuffle-combine rounds followed by the driver's serial fetch + merge.
// It returns the summed phase durations.
func treeCombinePhases(p AggParams, cur int) (time.Duration, error) {
	c := p.Cluster
	e := p.Nodes * c.ExecutorsPerNode
	m := p.MsgBytes
	var total time.Duration

	// Stage-1 blocks sit one per core, uniformly across executors.
	srcPlace := make([]int, cur)
	for i := range srcPlace {
		srcPlace[i] = i % e
	}
	// The scheduler spreads a small combiner stage across nodes, not
	// packed onto the first executors.
	spread := func(i int) int {
		node := i % p.Nodes
		slot := (i / p.Nodes) % c.ExecutorsPerNode
		return node*c.ExecutorsPerNode + slot
	}
	scale := treeScale(cur)
	for cur > scale+cur/scale {
		numComb := (cur + scale - 1) / scale
		eng := vclock.New()
		net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
		if err != nil {
			return 0, err
		}
		srcCount := cur
		place := srcPlace
		for comb := 0; comb < numComb; comb++ {
			comb := comb
			mbox := vclock.NewMailbox[int](eng)
			eng.Go(func(pr *vclock.Proc) {
				dst := spread(comb)
				// Shuffle fetches pipeline: all block transfers are in
				// flight while the combiner deserializes and merges.
				n := 0
				for src := comb; src < srcCount; src += numComb {
					netsim.Send(net, pr, mbox, place[src], dst, m, src)
					n++
				}
				for i := 0; i < n; i++ {
					mbox.Recv(pr)
					pr.Sleep(seconds(m, c.DeserRate) + seconds(m, c.MergeRate))
				}
				pr.Sleep(seconds(m, c.SerRate))
			})
		}
		d, err := eng.Run()
		if err != nil {
			return 0, err
		}
		total += d + stageCost(c, numComb)
		cur = numComb
		srcPlace = make([]int, cur)
		for i := range srcPlace {
			srcPlace[i] = spread(i)
		}
	}

	// Driver phase: blocks stream in concurrently, one driver thread
	// deserializes and merges them serially.
	eng := vclock.New()
	net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	mb := vclock.NewMailbox[int](eng)
	for i := 0; i < cur; i++ {
		i := i
		eng.Go(func(pr *vclock.Proc) {
			netsim.Send(net, pr, mb, srcPlace[i], netsim.Driver, m, i)
		})
	}
	blocks := cur
	eng.Go(func(pr *vclock.Proc) {
		for i := 0; i < blocks; i++ {
			mb.Recv(pr)
			pr.Sleep(seconds(m, c.DeserRate) + seconds(m, c.MergeRate) + c.TaskOverhead)
		}
	})
	d, err := eng.Run()
	if err != nil {
		return 0, err
	}
	return total + d, nil
}

// treeAggTime: every task result is serialized (one per core), then
// tree-combined.
func treeAggTime(p AggParams) (time.Duration, error) {
	c := p.Cluster
	e := p.Nodes * c.ExecutorsPerNode
	parts := e * c.CoresPerExecutor
	// Stage 1: all cores serialize their partition aggregator in
	// parallel.
	total := seconds(p.MsgBytes, c.SerRate) + stageCost(c, parts)
	combine, err := treeCombinePhases(p, parts)
	if err != nil {
		return 0, err
	}
	return total + combine, nil
}

// immMergeTime is the reduced-result stage tail: each executor's cores
// merge their aggregators into the shared in-memory value. Task
// completions stagger, so the lock is held for ~log2(cores) merge
// spans on the critical path rather than cores-1. No serialization
// happens.
func immMergeTime(c ClusterConfig) func(m int64) time.Duration {
	return func(m int64) time.Duration {
		spans := bits.Len(uint(c.CoresPerExecutor - 1))
		return time.Duration(spans) * seconds(m, c.MergeRate)
	}
}

// treeIMMAggTime: IMM leaves one aggregator per executor; those E
// serialized results then tree-combine.
func treeIMMAggTime(p AggParams) (time.Duration, error) {
	c := p.Cluster
	e := p.Nodes * c.ExecutorsPerNode
	total := immMergeTime(c)(p.MsgBytes) + // parallel across executors
		seconds(p.MsgBytes, c.SerRate) + // one result per executor
		stageCost(c, e*c.CoresPerExecutor)
	combine, err := treeCombinePhases(p, e)
	if err != nil {
		return 0, err
	}
	return total + combine, nil
}

// splitAggTime: IMM, then splitOp + ring reduce-scatter over the PDR,
// then the segment gather to the driver and concatOp.
func splitAggTime(p AggParams) (time.Duration, error) {
	c := p.Cluster
	e := p.Nodes * c.ExecutorsPerNode
	par := p.Parallelism
	if par < 1 {
		par = 4
	}
	total := immMergeTime(c)(p.MsgBytes) + stageCost(c, e*c.CoresPerExecutor)

	// SpawnRDD stage: split (memcpy), ring reduce-scatter, gather.
	total += seconds(p.MsgBytes, c.CopyRate)
	ring, err := RingReduceScatter(RSParams{
		Cluster:     c,
		Nodes:       p.Nodes,
		MsgBytes:    p.MsgBytes,
		Parallelism: par,
		TopoAware:   p.TopoAware,
	})
	if err != nil {
		return 0, err
	}
	total += ring

	// Gather: every executor ships its m/E of reduced segments to the
	// driver concurrently; the driver concatenates (memcpy) and handles
	// E task results.
	eng := vclock.New()
	net, err := c.network(eng, c.SC, p.Nodes, c.ExecutorsPerNode)
	if err != nil {
		return 0, err
	}
	seg := p.MsgBytes / int64(e)
	g := vclock.NewGroup(eng)
	for i := 0; i < e; i++ {
		i := i
		g.Go(func(pr *vclock.Proc) {
			net.Transfer(pr, i, netsim.Driver, seg)
		})
	}
	eng.Go(func(pr *vclock.Proc) {
		g.Wait(pr)
		// The driver deserializes the gathered segments, concatenates
		// them, and handles one task-result event per executor.
		pr.Sleep(seconds(p.MsgBytes, c.DeserRate) +
			seconds(p.MsgBytes, c.CopyRate) +
			time.Duration(e)*c.TaskOverhead)
	})
	d, err := eng.Run()
	if err != nil {
		return 0, err
	}
	return total + d + stageCost(c, e), nil
}
