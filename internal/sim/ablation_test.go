package sim

import (
	"testing"
)

func TestSplitNoIMMBetweenTreeAndSplit(t *testing.T) {
	c := BIC()
	p := AggParams{Cluster: c, Nodes: 8, MsgBytes: 256 * paperMB, Parallelism: 4, TopoAware: true}
	tree, err := AggregateTime(AggTree, p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AggregateTime(AggSplit, p)
	if err != nil {
		t.Fatal(err)
	}
	noIMM, err := SplitNoIMMTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(noIMM > full) {
		t.Errorf("split without IMM (%v) should be slower than full split (%v)", noIMM, full)
	}
	if !(noIMM < tree) {
		t.Errorf("split without IMM (%v) should still beat tree (%v)", noIMM, tree)
	}
	// Paper §5.2.3: most of the improvement comes from the scalable
	// reduction — the reduction-only speedup must exceed half the log
	// of the full speedup... concretely: tree/noIMM > sqrt(tree/full).
	reductionOnly := float64(tree) / float64(noIMM)
	fullSpeedup := float64(tree) / float64(full)
	if reductionOnly*reductionOnly < fullSpeedup {
		t.Errorf("scalable reduction contributes too little: reduction-only %.2f×, full %.2f×",
			reductionOnly, fullSpeedup)
	}
}

func TestSplitNoIMMValidation(t *testing.T) {
	c := BIC()
	if _, err := SplitNoIMMTime(AggParams{Cluster: c, Nodes: 0, MsgBytes: 1}); err == nil {
		t.Error("invalid nodes should fail")
	}
}

func TestSplitAllReduceTime(t *testing.T) {
	c := BIC()
	p := AggParams{Cluster: c, Nodes: 8, MsgBytes: 64 * paperMB, Parallelism: 4, TopoAware: true}
	gather, err := AggregateTime(AggSplit, p)
	if err != nil {
		t.Fatal(err)
	}
	allred, err := SplitAllReduceTime(p)
	if err != nil {
		t.Fatal(err)
	}
	if allred <= 0 {
		t.Fatal("allreduce time must be positive")
	}
	// Within a small factor of gather-based split: it trades the driver
	// gather for a second ring lap.
	if r := float64(allred) / float64(gather); r < 0.3 || r > 3 {
		t.Errorf("allreduce/gather ratio %.2f out of [0.3,3]", r)
	}
	if _, err := SplitAllReduceTime(AggParams{Cluster: c, Nodes: 0, MsgBytes: 1}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestReduceAlgorithmComparison(t *testing.T) {
	c := BIC()
	p := RSParams{Cluster: c, Nodes: 8, MsgBytes: 256 * paperMB, Parallelism: 4, TopoAware: true}
	ring, err := ReduceAlgorithmTime(AlgoRing, p)
	if err != nil {
		t.Fatal(err)
	}
	p1 := p
	p1.Parallelism = 1
	pw, err := ReduceAlgorithmTime(AlgoPairwise, p1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ReduceAlgorithmTime(AlgoHalving, p1)
	if err != nil {
		t.Fatal(err)
	}
	// At large messages on a multi-executor-per-node cluster the
	// topology-aware ring must win.
	if !(ring < pw && pw < rs) {
		t.Errorf("expected ring < pairwise < reduce+scatterv at 256MB, got %v %v %v", ring, pw, rs)
	}
	if _, err := ReduceAlgorithmTime("nope", p); err == nil {
		t.Error("unknown algorithm should fail")
	}
}
