package sim

import (
	"math"
	"testing"
	"time"
)

const paperMB = 1024 * 1024

func TestP2PLatencyMatchesCalibration(t *testing.T) {
	c := BIC()
	cases := []struct {
		tr   Transport
		want time.Duration
	}{
		{c.MPI, time.Duration(15.94 * float64(time.Microsecond))},
		{c.SC, time.Duration(72.73 * float64(time.Microsecond))},
		{c.BM, time.Duration(3861.25 * float64(time.Microsecond))},
	}
	for _, cse := range cases {
		got, err := P2PLatency(c, cse.tr)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(got) / float64(cse.want); ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s latency = %v, want ≈ %v (Figure 12)", cse.tr.Name, got, cse.want)
		}
	}
	// Orderings of Figure 12: BM ≫ SC > MPI.
	bm, _ := P2PLatency(c, c.BM)
	sc, _ := P2PLatency(c, c.SC)
	mpi, _ := P2PLatency(c, c.MPI)
	if !(bm > 10*sc && sc > 2*mpi) {
		t.Errorf("latency ordering broken: BM=%v SC=%v MPI=%v", bm, sc, mpi)
	}
}

func TestP2PThroughputParallelism(t *testing.T) {
	c := BIC()
	const m = 256 * paperMB
	tp1, err := P2PThroughput(c, c.SC, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp2, _ := P2PThroughput(c, c.SC, m, 2)
	tp4, _ := P2PThroughput(c, c.SC, m, 4)
	if !(tp4 > tp2 && tp2 > tp1) {
		t.Fatalf("throughput not increasing with parallelism: %v %v %v", tp1, tp2, tp4)
	}
	// Figure 13: 4 channels reach ≥95% of the 1151.80 MB/s line rate.
	if tp4 < 0.95*c.SC.NICBW {
		t.Errorf("4-parallel throughput %.0f MB/s below 95%% of line rate", tp4/paperMB)
	}
	// Small messages are latency-bound: far below line rate.
	small, _ := P2PThroughput(c, c.SC, 1024, 1)
	if small > 0.5*c.SC.NICBW {
		t.Errorf("1KB throughput %.0f MB/s suspiciously high", small/paperMB)
	}
	if _, err := P2PThroughput(c, c.SC, m, 0); err == nil {
		t.Error("parallelism 0 should fail")
	}
}

func TestRingReduceScatterParallelismAndTopology(t *testing.T) {
	c := BIC()
	base := RSParams{Cluster: c, Nodes: 8, MsgBytes: 256 * paperMB, Parallelism: 1, TopoAware: true}
	t1, err := RingReduceScatter(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Parallelism = 8
	t8, _ := RingReduceScatter(base)
	// Figure 14: 8-parallelism ≈ 3.06× over 1-parallelism.
	if sp := float64(t1) / float64(t8); sp < 2.0 || sp > 6.0 {
		t.Errorf("parallelism speedup %.2f out of plausible range [2,6] (paper 3.06)", sp)
	}
	base.Parallelism = 4
	topo, _ := RingReduceScatter(base)
	base.TopoAware = false
	noTopo, _ := RingReduceScatter(base)
	if sp := float64(noTopo) / float64(topo); sp < 1.3 {
		t.Errorf("topology-awareness speedup %.2f < 1.3 (paper 2.76)", sp)
	}
}

func TestRingReduceScatterScaling(t *testing.T) {
	c := BIC()
	run := func(nodes int, m int64) time.Duration {
		d, err := RingReduceScatter(RSParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 4, TopoAware: true})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Figure 15 large: 6→48 executors grows ≤ 1.5× (paper 1.27×).
	big1, big8 := run(1, 256*paperMB), run(8, 256*paperMB)
	if g := float64(big8) / float64(big1); g > 1.5 {
		t.Errorf("256MB reduce-scatter grew %.2f× from 1 to 8 nodes, want ≤1.5 (paper 1.27)", g)
	}
	// Figure 15 small: grows roughly with executor count (paper 5.30×).
	small1, small8 := run(1, 256*1024), run(8, 256*1024)
	if g := float64(small8) / float64(small1); g < 2.5 {
		t.Errorf("256KB reduce-scatter grew only %.2f× from 1 to 8 nodes, want ≥2.5 (paper 5.30)", g)
	}
}

func TestMPIScalesWorseThanSCForSmallMessages(t *testing.T) {
	c := BIC()
	growth := func(f func(RSParams) (time.Duration, error), m int64) float64 {
		a, err := f(RSParams{Cluster: c, Nodes: 2, MsgBytes: m, Parallelism: 4, TopoAware: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := f(RSParams{Cluster: c, Nodes: 8, MsgBytes: m, Parallelism: 4, TopoAware: true})
		if err != nil {
			t.Fatal(err)
		}
		return float64(b) / float64(a)
	}
	scG := growth(RingReduceScatter, 256*1024)
	mpiG := growth(MPIReduceScatter, 256*1024)
	if mpiG < scG*0.8 {
		t.Errorf("small-message growth: SC %.2f×, MPI %.2f× — MPI should scale comparably or worse", scG, mpiG)
	}
	// MPI stays faster in absolute terms at small scale (lower α).
	sc, _ := RingReduceScatter(RSParams{Cluster: c, Nodes: 2, MsgBytes: 256 * 1024, Parallelism: 4, TopoAware: true})
	mpi, _ := MPIReduceScatter(RSParams{Cluster: c, Nodes: 2, MsgBytes: 256 * 1024, Parallelism: 1})
	if mpi > sc {
		t.Errorf("MPI small-message absolute %v should beat SC %v", mpi, sc)
	}
}

func TestReduceScatterValidation(t *testing.T) {
	c := BIC()
	if _, err := RingReduceScatter(RSParams{Cluster: c, Nodes: 0, MsgBytes: 1, Parallelism: 1}); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := RingReduceScatter(RSParams{Cluster: c, Nodes: 1, MsgBytes: 0, Parallelism: 1}); err == nil {
		t.Error("0 bytes should fail")
	}
	if _, err := MPIReduceScatter(RSParams{Cluster: c, Nodes: 9, MsgBytes: 1, Parallelism: 1}); err == nil {
		t.Error("too many nodes should fail")
	}
}

func TestRankPlacement(t *testing.T) {
	topo := rankPlacement(6, 3, 2, true)
	for r, e := range topo {
		if e != r {
			t.Fatalf("topo placement should be identity, got %v", topo)
		}
	}
	rr := rankPlacement(6, 3, 2, false)
	// Round-robin: consecutive ranks land on different nodes.
	for r := 0; r < 5; r++ {
		if rr[r]/2 == rr[r+1]/2 {
			t.Fatalf("round-robin placement has same-node neighbors: %v", rr)
		}
	}
}

func TestAggregateFigure16Shapes(t *testing.T) {
	c := BIC()
	run := func(s AggStrategy, nodes int, m int64) time.Duration {
		d, err := AggregateTime(s, AggParams{Cluster: c, Nodes: nodes, MsgBytes: m, Parallelism: 4, TopoAware: true})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// 1KB: the three strategies are comparable (within 2×).
	for _, s := range []AggStrategy{AggTreeIMM, AggSplit} {
		tr, other := run(AggTree, 8, 1024), run(s, 8, 1024)
		if r := float64(other) / float64(tr); r < 0.5 || r > 2.0 {
			t.Errorf("1KB: %v is %.2f× tree, want within 2×", s, r)
		}
	}
	// 256MB at 8 nodes: split ≈ 6.48× over tree; IMM ≈ 1.46× (both
	// within a generous band).
	tr := run(AggTree, 8, 256*paperMB)
	sp := run(AggSplit, 8, 256*paperMB)
	imm := run(AggTreeIMM, 8, 256*paperMB)
	if r := float64(tr) / float64(sp); r < 4 || r > 11 {
		t.Errorf("256MB split speedup %.2f out of [4,11] (paper 6.48)", r)
	}
	if r := float64(tr) / float64(imm); r < 1.2 || r > 3 {
		t.Errorf("256MB IMM speedup %.2f out of [1.2,3] (paper 1.46)", r)
	}
	// Split scales nearly flat 1→8 nodes (paper 1.12×).
	sp1 := run(AggSplit, 1, 256*paperMB)
	if g := float64(sp) / float64(sp1); g > 1.4 {
		t.Errorf("split grew %.2f× from 1 to 8 nodes, want ≤1.4 (paper 1.12)", g)
	}
	// Tree grows markedly with nodes.
	tr1 := run(AggTree, 1, 256*paperMB)
	if g := float64(tr) / float64(tr1); g < 1.5 {
		t.Errorf("tree grew only %.2f× from 1 to 8 nodes", g)
	}
	// 8MB: split gains but less (paper 1.91×).
	tr8m, sp8m := run(AggTree, 8, 8*paperMB), run(AggSplit, 8, 8*paperMB)
	if r := float64(tr8m) / float64(sp8m); r < 1.2 || r > 4 {
		t.Errorf("8MB split speedup %.2f out of [1.2,4] (paper 1.91)", r)
	}
	if _, err := AggregateTime(AggStrategy(9), AggParams{Cluster: c, Nodes: 1, MsgBytes: 1}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestAggregateDeterministic(t *testing.T) {
	c := BIC()
	p := AggParams{Cluster: c, Nodes: 4, MsgBytes: 8 * paperMB, Parallelism: 4, TopoAware: true}
	a, err := AggregateTime(AggSplit, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := AggregateTime(AggSplit, p)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("simulation nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestWorkloadsTable(t *testing.T) {
	ws := Workloads()
	if len(ws) != 9 {
		t.Fatalf("Figure 1/17 have 9 workloads, got %d", len(ws))
	}
	if _, err := WorkloadByName("LDA-N"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload should fail")
	}
	for _, w := range ws {
		if w.AggBytes <= 0 || w.IterationsBIC <= 0 || w.ScalableCoreSecBIC <= 0 {
			t.Errorf("workload %s has degenerate parameters: %+v", w.Name, w)
		}
	}
	// kdd12 must have the largest aggregator (437MB).
	k12, _ := WorkloadByName("SVM-K12")
	for _, w := range ws {
		if w.AggBytes > k12.AggBytes {
			t.Errorf("%s aggregator larger than kdd12's", w.Name)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	// 8-node vs 1-node speedups on BIC under vanilla Spark.
	product := 1.0
	speedups := map[string]float64{}
	for _, w := range Workloads() {
		one, err := RunWorkload(RunParams{Cluster: BIC(), Workload: w, Strategy: AggTree, Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		eight, err := RunWorkload(RunParams{Cluster: BIC(), Workload: w, Strategy: AggTree, Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		sp := one.Total().Seconds() / eight.Total().Seconds()
		speedups[w.Name] = sp
		product *= sp
		// Nothing approaches perfect speedup 8 (paper max 2.49).
		if sp > 4 {
			t.Errorf("%s speedup %.2f implausibly high", w.Name, sp)
		}
	}
	geo := math.Pow(product, 1.0/9.0)
	if geo < 1.0 || geo > 1.7 {
		t.Errorf("Figure 1 geomean speedup %.2f out of [1.0,1.7] (paper avg 1.25)", geo)
	}
	// The kdd workloads scale WORST — adding machines slows them down.
	if speedups["LR-K"] >= 1.0 || speedups["SVM-K"] >= 1.0 {
		t.Errorf("kdd10 workloads should scale below 1.0: LR-K=%.2f SVM-K=%.2f",
			speedups["LR-K"], speedups["SVM-K"])
	}
	// LDA-N scales best among the LDA/LR workloads (paper best 2.49).
	if speedups["LDA-N"] < 1.8 {
		t.Errorf("LDA-N speedup %.2f, want ≥ 1.8 (paper 2.49)", speedups["LDA-N"])
	}
}

func TestFigure17Shapes(t *testing.T) {
	for _, cl := range []ClusterConfig{BIC(), AWS()} {
		product := 1.0
		speedups := map[string]float64{}
		for _, w := range Workloads() {
			spark, err := RunWorkload(RunParams{Cluster: cl, Workload: w, Strategy: AggTree})
			if err != nil {
				t.Fatal(err)
			}
			sparker, err := RunWorkload(RunParams{Cluster: cl, Workload: w, Strategy: AggSplit})
			if err != nil {
				t.Fatal(err)
			}
			sp := spark.Total().Seconds() / sparker.Total().Seconds()
			speedups[w.Name] = sp
			product *= sp
			if sp < 1.0 {
				t.Errorf("[%s] %s: Sparker slower than Spark (%.2f)", cl.Name, w.Name, sp)
			}
		}
		geo := math.Pow(product, 1.0/9.0)
		// Paper: geomean 1.60 on BIC, 1.81 on AWS.
		if geo < 1.3 || geo > 2.6 {
			t.Errorf("[%s] geomean %.2f out of [1.3,2.6]", cl.Name, geo)
		}
		// Big-aggregator workloads gain the most.
		if speedups["SVM-K"] < speedups["SVM-A"] || speedups["SVM-K12"] < speedups["SVM-C"] {
			t.Errorf("[%s] kdd workloads should gain most: %+v", cl.Name, speedups)
		}
	}
}

func TestFigure18StrongScaling(t *testing.T) {
	ldan, err := WorkloadByName("LDA-N")
	if err != nil {
		t.Fatal(err)
	}
	type cfg struct{ nodes, epn, cpe int }
	configs := []cfg{{1, 2, 4}, {1, 12, 8}, {10, 12, 8}}
	var sparkRed, sparkerRed []float64
	for _, cf := range configs {
		spark, err := RunWorkload(RunParams{Cluster: AWS(), Workload: ldan, Strategy: AggTree,
			Nodes: cf.nodes, ExecutorsPerNode: cf.epn, CoresPerExecutor: cf.cpe})
		if err != nil {
			t.Fatal(err)
		}
		sparker, err := RunWorkload(RunParams{Cluster: AWS(), Workload: ldan, Strategy: AggSplit,
			Nodes: cf.nodes, ExecutorsPerNode: cf.epn, CoresPerExecutor: cf.cpe})
		if err != nil {
			t.Fatal(err)
		}
		sparkRed = append(sparkRed, spark.AggReduce.Seconds())
		sparkerRed = append(sparkerRed, sparker.AggReduce.Seconds())
		// Sparker's compute must not exceed Spark's (IMM removes
		// serialization; Figure 18's compute bars).
		if sparker.AggCompute > spark.AggCompute+spark.AggCompute/10 {
			t.Errorf("%d cores: sparker compute %v > spark %v",
				cf.nodes*cf.epn*cf.cpe, sparker.AggCompute, spark.AggCompute)
		}
	}
	// Spark's reduction grows with scale; Sparker's stays low, so the
	// reduction speedup increases with scale (paper: 4.19× → 7.22×).
	firstSp := sparkRed[0] / sparkerRed[0]
	lastSp := sparkRed[len(sparkRed)-1] / sparkerRed[len(sparkerRed)-1]
	if firstSp < 1.5 {
		t.Errorf("reduction speedup at small scale %.2f < 1.5 (paper 4.19)", firstSp)
	}
	if lastSp <= firstSp {
		t.Errorf("reduction speedup should grow with scale: %.2f → %.2f", firstSp, lastSp)
	}
	// Under vanilla Spark the reduction time grows as cores scale
	// 8→960 (paper 26.36s → 111.26s).
	if sparkRed[len(sparkRed)-1] <= sparkRed[0] {
		t.Errorf("Spark reduction should grow with scale: %v", sparkRed)
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	w, _ := WorkloadByName("LDA-E")
	if _, err := RunWorkload(RunParams{Cluster: BIC(), Workload: w, Nodes: 99}); err == nil {
		t.Error("too many nodes should fail")
	}
	if _, err := RunWorkload(RunParams{Cluster: BIC(), Workload: w, Strategy: AggStrategy(7)}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestPhasesTotal(t *testing.T) {
	p := Phases{AggCompute: 1, AggReduce: 2, NonAgg: 3, Driver: 4}
	if p.Total() != 10 {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestClusterAccessors(t *testing.T) {
	c := BIC()
	if c.Executors() != 48 || c.TotalCores() != 192 {
		t.Fatalf("BIC geometry wrong: %d executors, %d cores", c.Executors(), c.TotalCores())
	}
	a := AWS()
	if a.Executors() != 120 || a.TotalCores() != 960 {
		t.Fatalf("AWS geometry wrong: %d executors, %d cores", a.Executors(), a.TotalCores())
	}
	if c.WithNodes(3).Nodes != 3 {
		t.Fatal("WithNodes failed")
	}
	if AggTree.String() != "tree" || AggSplit.String() != "split" || AggTreeIMM.String() != "tree+imm" {
		t.Fatal("AggStrategy strings wrong")
	}
}

func TestFigure2OrderingByAggregatorSize(t *testing.T) {
	// Aggregation share must rank with aggregator size: kdd12 (417MB)
	// above kdd10 (154MB) above criteo/avazu (7.6MB) — the paper's
	// Figure-2 bar ordering.
	share := func(name string) float64 {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ph, err := RunWorkload(RunParams{Cluster: BIC(), Workload: w, Strategy: AggTree, Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		return float64(ph.AggCompute+ph.AggReduce) / float64(ph.Total())
	}
	k12, k10, cr := share("SVM-K12"), share("SVM-K"), share("SVM-C")
	if !(k12 > k10 && k10 > cr) {
		t.Errorf("aggregation share ordering broken: kdd12=%.2f kdd10=%.2f criteo=%.2f", k12, k10, cr)
	}
}
