package sim

import (
	"fmt"
	"time"

	"sparker/internal/data"
)

// WorkloadSpec models one of the paper's nine workload combinations
// (Table 2 datasets × Table 3 models). Compute costs are calibrated
// core-seconds per iteration; LDA-N's are fitted to the paper's own
// strong-scaling decompositions (Figures 3–4) and the others scale
// from their dataset statistics.
type WorkloadSpec struct {
	// Name is the paper's label ("LDA-N", "SVM-K12", …).
	Name string
	// Model is "LDA", "LR" or "SVM".
	Model string
	// Dataset is the Table-2 profile.
	Dataset data.Profile
	// AggBytes is the per-iteration aggregator size.
	AggBytes int64
	// Iterations per cluster (the paper cut LDA from 40 to 15 on AWS).
	IterationsBIC, IterationsAWS int
	// ScalableCoreSec is the per-iteration compute in core-seconds
	// (divides across all cores), per cluster.
	ScalableCoreSecBIC, ScalableCoreSecAWS float64
	// FixedCompSec is the per-iteration non-scalable compute tail
	// (stragglers, skewed partitions), per cluster.
	FixedCompSecBIC, FixedCompSecAWS float64
	// DriverSec is per-iteration driver-only work (model update,
	// broadcast bookkeeping).
	DriverSec float64
	// NonAggFrac is the scalable non-aggregation work as a fraction of
	// ScalableCoreSec (sampling, lineage evaluation).
	NonAggFrac float64
}

const ldaK = 100 // Table 3: LDA K=100

// mustProfile panics on unknown dataset names (programmer error).
func mustProfile(name string) data.Profile {
	p, err := data.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Workloads returns the nine Figure-1/2/17 workloads. Classification
// compute is nnz-proportional (JVM sparse kernels ≈ 100ns per stored
// value on BIC's E5-2680v4, ≈ 4× faster per core on AWS's 8175M with
// fewer, wider executors); LDA compute is K·nnz-proportional, fitted to
// Figures 3–4.
func Workloads() []WorkloadSpec {
	class := func(name, model, ds string, iters int) WorkloadSpec {
		p := mustProfile(ds)
		coreSec := float64(p.Samples) * float64(p.NNZPerSample) * 100e-9
		return WorkloadSpec{
			Name:               name,
			Model:              model,
			Dataset:            p,
			AggBytes:           p.AggregatorBytes(ldaK),
			IterationsBIC:      iters,
			IterationsAWS:      iters,
			ScalableCoreSecBIC: coreSec,
			ScalableCoreSecAWS: coreSec / 4,
			FixedCompSecBIC:    0.012 * coreSec,
			FixedCompSecAWS:    0.006 * coreSec,
			DriverSec:          0.35,
			NonAggFrac:         0.25,
		}
	}
	lda := func(name, ds string) WorkloadSpec {
		p := mustProfile(ds)
		// Fit LDA-N to Figures 3–4, scale LDA-E by token count.
		tokens := float64(p.Samples) * float64(p.NNZPerSample)
		const nTokens = 300_000.0 * 230.0 // LDA-N
		return WorkloadSpec{
			Name:               name,
			Model:              "LDA",
			Dataset:            p,
			AggBytes:           p.AggregatorBytes(ldaK),
			IterationsBIC:      40,
			IterationsAWS:      15,
			ScalableCoreSecBIC: 555 * tokens / nTokens,
			ScalableCoreSecAWS: 115 * tokens / nTokens,
			FixedCompSecBIC:    5.7 * tokens / nTokens,
			FixedCompSecAWS:    3.7 * tokens / nTokens,
			DriverSec:          3.0 * float64(p.AggregatorBytes(ldaK)) / float64(mustProfile("nytimes").AggregatorBytes(ldaK)),
			NonAggFrac:         0.2,
		}
	}
	return []WorkloadSpec{
		lda("LDA-E", "enron"),
		lda("LDA-N", "nytimes"),
		class("LR-A", "LR", "avazu", 100),
		class("LR-C", "LR", "criteo", 100),
		class("LR-K", "LR", "kdd10", 100),
		class("SVM-A", "SVM", "avazu", 100),
		class("SVM-C", "SVM", "criteo", 100),
		class("SVM-K", "SVM", "kdd10", 100),
		class("SVM-K12", "SVM", "kdd12", 100),
	}
}

// WorkloadByName looks a workload up.
func WorkloadByName(name string) (WorkloadSpec, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("sim: unknown workload %q", name)
}

// Phases is a decomposed end-to-end time (the stacked bars of Figures
// 2–4 and 18).
type Phases struct {
	AggCompute time.Duration
	AggReduce  time.Duration
	NonAgg     time.Duration
	Driver     time.Duration
}

// Total sums the phases.
func (p Phases) Total() time.Duration {
	return p.AggCompute + p.AggReduce + p.NonAgg + p.Driver
}

// RunParams configures one simulated training run.
type RunParams struct {
	Cluster ClusterConfig
	// Workload selects the model/dataset pair.
	Workload WorkloadSpec
	// Strategy is the aggregation implementation (AggTree = vanilla
	// Spark; AggSplit = Sparker).
	Strategy AggStrategy
	// Nodes restricts to the first Nodes nodes (default: all).
	Nodes int
	// CoresPerExecutor overrides the cluster's (Figure 18 shrinks
	// executors to 4 cores for small-core configs); 0 keeps default.
	CoresPerExecutor int
	// ExecutorsPerNode override; 0 keeps default.
	ExecutorsPerNode int
	// Parallelism is the split-aggregation PDR width (default 4).
	Parallelism int
}

func (rp *RunParams) fill() error {
	if rp.Nodes == 0 {
		rp.Nodes = rp.Cluster.Nodes
	}
	if rp.Nodes < 1 || rp.Nodes > rp.Cluster.Nodes {
		return fmt.Errorf("sim: nodes %d out of range", rp.Nodes)
	}
	if rp.CoresPerExecutor == 0 {
		rp.CoresPerExecutor = rp.Cluster.CoresPerExecutor
	}
	if rp.ExecutorsPerNode == 0 {
		rp.ExecutorsPerNode = rp.Cluster.ExecutorsPerNode
	}
	if rp.Parallelism == 0 {
		rp.Parallelism = 4
	}
	return nil
}

// RunWorkload simulates a full training run and returns its
// decomposed end-to-end time.
func RunWorkload(rp RunParams) (Phases, error) {
	if err := rp.fill(); err != nil {
		return Phases{}, err
	}
	c := rp.Cluster
	c.CoresPerExecutor = rp.CoresPerExecutor
	c.ExecutorsPerNode = rp.ExecutorsPerNode
	w := rp.Workload

	iters := w.IterationsBIC
	coreSec := w.ScalableCoreSecBIC
	fixed := w.FixedCompSecBIC
	if c.Name == "AWS" {
		iters = w.IterationsAWS
		coreSec = w.ScalableCoreSecAWS
		fixed = w.FixedCompSecAWS
	}

	execs := rp.Nodes * c.ExecutorsPerNode
	totalCores := execs * c.CoresPerExecutor
	parts := totalCores // MLlib defaults spark.default.parallelism to the core count
	m := w.AggBytes

	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// --- agg-compute: the first stage of the aggregation ---------------
	perIterCompute := secs(coreSec/float64(totalCores)+fixed) + stageCost(c, parts)
	switch rp.Strategy {
	case AggTree:
		// Each core serializes every task result it produces; the
		// serialized bytes also churn the allocator (the overhead IMM
		// removes, visible in Figure 18's compute bars).
		tasksPerCore := (parts + totalCores - 1) / totalCores
		perIterCompute += time.Duration(tasksPerCore) * seconds(m, c.SerRate) * 2
	case AggTreeIMM:
		perIterCompute += immMergeTime(c)(m) + seconds(m, c.SerRate)
	case AggSplit:
		perIterCompute += immMergeTime(c)(m)
	}

	// --- agg-reduce: every stage after the first ------------------------
	ap := AggParams{Cluster: c, Nodes: rp.Nodes, MsgBytes: m, Parallelism: rp.Parallelism, TopoAware: true}
	var perIterReduce time.Duration
	var err error
	switch rp.Strategy {
	case AggTree:
		perIterReduce, err = treeCombinePhases(ap, parts)
	case AggTreeIMM:
		perIterReduce, err = treeCombinePhases(ap, execs)
	case AggSplit:
		perIterReduce, err = splitReducePhase(ap)
	default:
		err = fmt.Errorf("sim: unknown strategy %d", int(rp.Strategy))
	}
	if err != nil {
		return Phases{}, err
	}

	// --- non-agg & driver ----------------------------------------------
	perIterNonAgg := secs(w.NonAggFrac*coreSec/float64(totalCores)) + stageCost(c, parts)
	perIterDriver := secs(w.DriverSec)

	return Phases{
		AggCompute: time.Duration(iters) * perIterCompute,
		AggReduce:  time.Duration(iters) * perIterReduce,
		NonAgg:     time.Duration(iters) * perIterNonAgg,
		Driver:     time.Duration(iters) * perIterDriver,
	}, nil
}

// splitReducePhase is split aggregation's post-compute part: the
// SpawnRDD reduce-scatter plus the segment gather (splitAggTime minus
// the IMM merge, which is charged to agg-compute).
func splitReducePhase(p AggParams) (time.Duration, error) {
	full, err := splitAggTime(p)
	if err != nil {
		return 0, err
	}
	c := p.Cluster
	imm := immMergeTime(c)(p.MsgBytes) + stageCost(c, p.Nodes*c.ExecutorsPerNode*c.CoresPerExecutor)
	if full < imm {
		return 0, nil
	}
	return full - imm, nil
}
