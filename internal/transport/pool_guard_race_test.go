//go:build race

package transport

import "testing"

// Parking the same backing array twice must panic under the race
// detector instead of silently poisoning the pool (two GetBuf callers
// would be handed the same memory).
func TestPutBufDoubleParkPanicsUnderRace(t *testing.T) {
	// Drain the bucket so the first park below is guaranteed to succeed
	// (a full bucket drops the buffer, which would legitimize the second
	// put); the held buffers go back at the end.
	const size = 3 << 12
	var held [][]byte
	for i := 0; i < 128; i++ {
		held = append(held, GetBuf(size))
	}
	buf := GetBuf(size)
	PutBuf(buf)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second PutBuf of a parked buffer did not panic")
			}
		}()
		PutBuf(buf)
	}()
	// Remove our parked buffer again and restore the drained ones.
	if got := GetBuf(size); &got[0] != &buf[0] {
		t.Error("parked buffer was not first in its bucket after drain")
	}
	for _, h := range held {
		PutBuf(h)
	}
}
