//go:build !race

package transport

// No-op stand-ins for the -race pool guard (pool_guard_race.go): in
// production builds Get/Put stay branch-free and allocation-free.

func guardPark([]byte)   {}
func guardUnpark([]byte) {}
