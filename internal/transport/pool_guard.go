//go:build !race

package transport

// No-op stand-ins for the -race pool guard (pool_guard_race.go): in
// production builds Get/Put stay branch-free and allocation-free.

// RaceGuard reports whether the pool guard is compiled in; callers gate
// tag-building work behind it.
const RaceGuard = false

// TagBuf is a no-op without the race guard.
func TagBuf([]byte, string) {}

func guardPark([]byte)   {}
func guardUnpark([]byte) {}
