// Package transport abstracts the byte-level network under the engine.
//
// Two implementations are provided: Mem, an in-process network built on
// channels with optional latency/bandwidth shaping (the default for
// tests and examples), and TCP, real loopback sockets via net (used by
// integration tests to demonstrate the stack works over a real
// network). The scalable communicator, the block manager and the rdd
// driver/executor protocol all speak only through this interface, so
// the two can be swapped freely — mirroring how Sparker swapped Spark's
// BlockManager transport for ZeroMQ.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Addr names an endpoint within a Network.
type Addr string

// ErrClosed is returned by operations on closed connections, listeners
// or networks.
var ErrClosed = errors.New("transport: closed")

// Conn is an ordered, reliable, message-framed point-to-point channel.
// Send and Recv are each safe for one concurrent caller per direction.
type Conn interface {
	// Send transmits one message. The buffer is owned by the transport
	// after Send returns.
	Send(b []byte) error
	// Recv blocks for the next message.
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts incoming connections at an Addr.
type Listener interface {
	Accept() (Conn, error)
	Addr() Addr
	Close() error
}

// Network creates listeners and dials endpoints.
type Network interface {
	Listen(addr Addr) (Listener, error)
	Dial(addr Addr) (Conn, error)
	// Close tears down the network and all of its connections.
	Close() error
}

// Shape describes optional traffic shaping for the Mem network: each
// message is delayed by Latency plus len/BytesPerSec. Zero values mean
// "no shaping". Shaping is applied on the receive path so concurrent
// senders are not serialized artificially.
type Shape struct {
	Latency     time.Duration
	BytesPerSec float64
}

func (s Shape) delay(n int) time.Duration {
	d := s.Latency
	if s.BytesPerSec > 0 {
		d += time.Duration(float64(n) / s.BytesPerSec * float64(time.Second))
	}
	return d
}

// --- in-memory network -------------------------------------------------

// MemNetwork is a process-local Network. Connections are pairs of
// buffered channels. It is safe for concurrent use.
type MemNetwork struct {
	shape Shape

	mu        sync.Mutex
	listeners map[Addr]*memListener
	closed    bool
}

// NewMem returns an in-process network with no traffic shaping.
func NewMem() *MemNetwork { return NewMemShaped(Shape{}) }

// NewMemShaped returns an in-process network that delays each message
// according to shape.
func NewMemShaped(shape Shape) *MemNetwork {
	return &MemNetwork{shape: shape, listeners: map[Addr]*memListener{}}
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr Addr) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{net: n, addr: addr, backlog: make(chan *memConn, 128)}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(addr Addr) (Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	link := &memLink{
		a2b:  make(chan []byte, 1024),
		b2a:  make(chan []byte, 1024),
		done: make(chan struct{}),
	}
	client := &memConn{link: link, send: link.a2b, recv: link.b2a, shape: n.shape}
	server := &memConn{link: link, send: link.b2a, recv: link.a2b, shape: n.shape}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

// Close implements Network.
func (n *MemNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, l := range n.listeners {
		l.closeLocked()
	}
	n.listeners = map[Addr]*memListener{}
	return nil
}

type memListener struct {
	net     *MemNetwork
	addr    Addr
	backlog chan *memConn

	once   sync.Once
	closed chan struct{}
}

func (l *memListener) done() chan struct{} {
	l.once.Do(func() { l.closed = make(chan struct{}) })
	return l.closed
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done():
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() Addr { return l.addr }

func (l *memListener) Close() error {
	l.net.mu.Lock()
	defer l.net.mu.Unlock()
	l.closeLocked()
	delete(l.net.listeners, l.addr)
	return nil
}

func (l *memListener) closeLocked() {
	select {
	case <-l.done():
	default:
		close(l.done())
	}
}

// memLink is the shared state of one connection. Closing either end
// closes both directions; data channels are never closed, so Send can
// never panic.
type memLink struct {
	a2b, b2a chan []byte
	done     chan struct{}
	once     sync.Once
}

func (l *memLink) close() { l.once.Do(func() { close(l.done) }) }

type memConn struct {
	link  *memLink
	send  chan []byte
	recv  chan []byte
	shape Shape
}

// SendRetainsBuffer implements SendRetainer: the receiver is handed the
// sender's slice itself, so the sender must not reuse it. The buffer
// re-enters circulation only when the receiver releases it.
func (c *memConn) SendRetainsBuffer() bool { return true }

func (c *memConn) Send(b []byte) error {
	select {
	case <-c.link.done:
		return ErrClosed
	default:
	}
	select {
	case c.send <- b:
		return nil
	case <-c.link.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case b := <-c.recv:
		if d := c.shape.delay(len(b)); d > 0 {
			time.Sleep(d)
		}
		return b, nil
	case <-c.link.done:
		// Drain anything already queued before reporting closure.
		select {
		case b := <-c.recv:
			return b, nil
		default:
		}
		return nil, ErrClosed
	}
}

func (c *memConn) Close() error {
	c.link.close()
	return nil
}
