//go:build race

package transport

import (
	"fmt"
	"sync"
	"unsafe"
)

// RaceGuard reports whether the pool guard is compiled in. Hot paths
// gate the cost of building ownership tags (fmt.Sprintf) behind it so
// production builds pay nothing.
const RaceGuard = true

// Under the race detector the pool tracks the backing array of every
// parked buffer and panics when the same array would be parked twice —
// the poisoning signature of an ownership-contract violation (a double
// PutBuf, or a PutBuf of a buffer something else still aliases). Only
// parked buffers are tracked, so the guard pins no memory beyond what
// the bucket channels already hold; non-race builds compile it away
// entirely (pool_guard.go).
var parkedBufs sync.Map // *byte (backing array) -> struct{}

// bufTags remembers the last owner tag attached to a backing array via
// TagBuf, so a double-park panic can name the channel/chunk that owned
// the buffer. Entries are overwritten on retag and deleted on unpark,
// so the map tracks only buffers with a live ownership claim.
var bufTags sync.Map // *byte (backing array) -> string

// TagBuf attaches an ownership tag (e.g. "ch 2 chunk 17") to buf's
// backing array. The tag appears in the double-park panic message,
// turning "some buffer was released twice" into "the chunk 17 wire
// buffer of channel 2 was released twice". Race builds only; the
// non-race stub is a no-op, so callers should gate tag construction
// behind RaceGuard.
func TagBuf(buf []byte, tag string) {
	if cap(buf) == 0 {
		return
	}
	bufTags.Store(unsafe.SliceData(buf[:cap(buf)]), tag)
}

func guardPark(buf []byte) {
	key := unsafe.SliceData(buf)
	if _, dup := parkedBufs.LoadOrStore(key, struct{}{}); dup {
		owner := "untagged"
		if t, ok := bufTags.Load(key); ok {
			owner = t.(string)
		}
		panic(fmt.Sprintf(
			"transport: wire buffer (cap %d, owner %s) parked in the pool twice — "+
				"double PutBuf/Release, a release of an in-flight send buffer, "+
				"or a released buffer is still aliased; "+
				"see the ownership contract in DESIGN.md §8 and §11", cap(buf), owner))
	}
}

func guardUnpark(buf []byte) {
	key := unsafe.SliceData(buf)
	parkedBufs.Delete(key)
	bufTags.Delete(key)
}
