//go:build race

package transport

import (
	"fmt"
	"sync"
	"unsafe"
)

// Under the race detector the pool tracks the backing array of every
// parked buffer and panics when the same array would be parked twice —
// the poisoning signature of an ownership-contract violation (a double
// PutBuf, or a PutBuf of a buffer something else still aliases). Only
// parked buffers are tracked, so the guard pins no memory beyond what
// the bucket channels already hold; non-race builds compile it away
// entirely (pool_guard.go).
var parkedBufs sync.Map // *byte (backing array) -> struct{}

func guardPark(buf []byte) {
	if _, dup := parkedBufs.LoadOrStore(unsafe.SliceData(buf), struct{}{}); dup {
		panic(fmt.Sprintf(
			"transport: wire buffer (cap %d) parked in the pool twice — "+
				"double PutBuf/Release, or a released buffer is still aliased; "+
				"see the ownership contract in DESIGN.md §8", cap(buf)))
	}
}

func guardUnpark(buf []byte) {
	parkedBufs.Delete(unsafe.SliceData(buf))
}
