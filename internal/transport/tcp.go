package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork is a Network over real sockets (loopback by default).
// Logical Addrs map to host:port strings assigned at Listen time; Dial
// resolves them through a shared directory, so the rest of the stack
// can keep using stable logical names like "executor-3".
type TCPNetwork struct {
	mu        sync.Mutex
	directory map[Addr]string // logical addr -> host:port
	listeners []*tcpListener
	closed    bool
}

// NewTCP returns an empty TCP network directory.
func NewTCP() *TCPNetwork {
	return &TCPNetwork{directory: map[Addr]string{}}
}

// Listen implements Network. It binds an OS-assigned loopback port and
// registers it under addr.
func (n *TCPNetwork) Listen(addr Addr) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.directory[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	nl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n.directory[addr] = nl.Addr().String()
	l := &tcpListener{net: n, addr: addr, nl: nl}
	n.listeners = append(n.listeners, l)
	return l, nil
}

// Dial implements Network.
func (n *TCPNetwork) Dial(addr Addr) (Conn, error) {
	n.mu.Lock()
	target, ok := n.directory[addr]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	c, err := net.Dial("tcp", target)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	for _, l := range n.listeners {
		l.nl.Close()
	}
	n.listeners = nil
	n.directory = map[Addr]string{}
	return nil
}

type tcpListener struct {
	net  *TCPNetwork
	addr Addr
	nl   net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Addr() Addr { return l.addr }

func (l *tcpListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.directory, l.addr)
	l.net.mu.Unlock()
	return l.nl.Close()
}

// tcpConn frames messages with a 4-byte little-endian length prefix.
type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	mu sync.Mutex // guards w
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 1<<16),
		w: bufio.NewWriterSize(c, 1<<16),
	}
}

func (t *tcpConn) Send(b []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	return t.w.Flush()
}

func (t *tcpConn) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := GetBuf(int(n))
	if _, err := io.ReadFull(t.r, buf); err != nil {
		PutBuf(buf)
		return nil, err
	}
	return buf, nil
}

// SendRetainsBuffer implements SendRetainer: Send flushes the bytes
// into the socket before returning, so the caller's buffer is free for
// reuse (the comm layer recycles it through the pool).
func (t *tcpConn) SendRetainsBuffer() bool { return false }

func (t *tcpConn) Close() error { return t.c.Close() }
