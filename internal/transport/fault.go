package transport

// Fault-injection network wrapper. FaultyNetwork decorates any Network
// with deterministic, seed-driven failure modes so the layers above
// (comm, collective, core) can be exercised against dead or misbehaving
// peers entirely in-process — the same role netsim plays for latency
// modelling, but for failures. Rules are matched by listener address,
// which is how a "peer" is identified at this layer: a comm endpoint's
// inbound world is its listening Addr, so matching that Addr captures
// every connection into the peer.
//
// Supported fault kinds:
//
//   - FaultDrop:      sends after the first AfterMsgs messages vanish
//                     silently (the sender sees success) — the silent
//                     peer that motivates recv deadlines.
//   - FaultDelay:     each affected send is delayed by Delay — the
//                     straggler peer.
//   - FaultDuplicate: each affected message is delivered twice (as an
//                     independent copy, so buffer-pool ownership is not
//                     violated) — the retransmitting link.
//   - FaultKill:      once any matching connection has carried AfterMsgs
//                     messages, every matching connection and listener
//                     is closed and future dials to the peer fail — the
//                     executor that dies mid-collective.
//
// All counters are per-connection and all randomness (Prob < 1) derives
// from the network seed, so a given (seed, rules, schedule) is
// reproducible.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the injectable failure modes.
type FaultKind int

// Fault kinds. See the package comment on fault injection.
const (
	FaultDrop FaultKind = iota
	FaultDelay
	FaultDuplicate
	FaultKill
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultKill:
		return "kill"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultRule describes one injected fault. A rule applies to every
// connection whose listener address matches Match — both connections
// dialed to that address and connections accepted at it.
type FaultRule struct {
	// Match selects the victim peer(s) by listener address. Nil matches
	// every address.
	Match func(Addr) bool
	// Kind is the failure mode.
	Kind FaultKind
	// AfterMsgs is the number of messages each matching connection
	// carries unharmed before the fault engages (for FaultKill: before
	// the kill triggers). 0 means the fault is active from the first
	// message — "drop all".
	AfterMsgs int
	// Delay is the added per-message latency for FaultDelay.
	Delay time.Duration
	// PerByte, for FaultDelay, adds len(msg) × PerByte on top of Delay,
	// modelling a straggler whose slowdown scales with payload size
	// (a saturated NIC or throttled disk) rather than a fixed stall.
	PerByte time.Duration
	// Prob is the per-message fault probability once engaged, for
	// FaultDrop and FaultDuplicate. 0 means 1.0 (always).
	Prob float64

	killOnce sync.Once
}

// StragglerRule builds a deterministic delay-only slowdown of one peer:
// every message into or out of the listener address selected by match
// is held for delay plus perByte × its size. No drops, duplicates or
// kills — the peer is slow, not broken — which is the straggler shape
// speculative execution must detect and route around.
func StragglerRule(match func(Addr) bool, delay time.Duration, perByte time.Duration) *FaultRule {
	return &FaultRule{Match: match, Kind: FaultDelay, Delay: delay, PerByte: perByte}
}

func (r *FaultRule) matches(addr Addr) bool {
	return r.Match == nil || r.Match(addr)
}

// FaultyNetwork wraps an inner Network with fault injection.
type FaultyNetwork struct {
	inner Network
	seed  int64
	rules []*FaultRule

	mu        sync.Mutex
	conns     map[*faultConn]struct{}
	listeners map[*faultListener]struct{}
	killed    []func(Addr) bool // dial/listen to these fails
	nextConn  int64
}

// NewFaulty wraps inner with the given fault rules. seed drives every
// probabilistic decision deterministically.
func NewFaulty(inner Network, seed int64, rules ...*FaultRule) *FaultyNetwork {
	return &FaultyNetwork{
		inner:     inner,
		seed:      seed,
		rules:     rules,
		conns:     map[*faultConn]struct{}{},
		listeners: map[*faultListener]struct{}{},
	}
}

// Kill immediately severs every connection and listener whose address
// matches, and makes future Dial/Listen calls on matching addresses
// fail — the programmatic "executor died" switch.
func (n *FaultyNetwork) Kill(match func(Addr) bool) {
	if match == nil {
		match = func(Addr) bool { return true }
	}
	n.mu.Lock()
	n.killed = append(n.killed, match)
	var closers []interface{ Close() error }
	for c := range n.conns {
		if match(c.addr) {
			closers = append(closers, c.inner)
		}
	}
	for l := range n.listeners {
		if match(l.addr) {
			closers = append(closers, l.inner)
		}
	}
	n.mu.Unlock()
	for _, c := range closers {
		c.Close()
	}
}

// isKilled reports whether addr has been killed.
func (n *FaultyNetwork) isKilled(addr Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isKilledLocked(addr)
}

func (n *FaultyNetwork) isKilledLocked(addr Addr) bool {
	for _, m := range n.killed {
		if m(addr) {
			return true
		}
	}
	return false
}

// Listen implements Network.
func (n *FaultyNetwork) Listen(addr Addr) (Listener, error) {
	if n.isKilled(addr) {
		return nil, fmt.Errorf("transport: fault: peer %q killed: %w", addr, ErrClosed)
	}
	inner, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	l := &faultListener{net: n, inner: inner, addr: addr}
	n.mu.Lock()
	n.listeners[l] = struct{}{}
	n.mu.Unlock()
	return l, nil
}

// Dial implements Network.
func (n *FaultyNetwork) Dial(addr Addr) (Conn, error) {
	if n.isKilled(addr) {
		return nil, fmt.Errorf("transport: fault: peer %q killed: %w", addr, ErrClosed)
	}
	inner, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return n.wrap(inner, addr), nil
}

// Close implements Network.
func (n *FaultyNetwork) Close() error {
	n.mu.Lock()
	n.conns = map[*faultConn]struct{}{}
	n.listeners = map[*faultListener]struct{}{}
	n.mu.Unlock()
	return n.inner.Close()
}

// wrap registers and decorates one connection associated with the
// listener address addr.
func (n *FaultyNetwork) wrap(inner Conn, addr Addr) *faultConn {
	n.mu.Lock()
	id := n.nextConn
	n.nextConn++
	c := &faultConn{
		net:   n,
		inner: inner,
		addr:  addr,
		rng:   rand.New(rand.NewSource(n.seed ^ (id+1)*-0x61C8864680B583EB)),
	}
	for _, r := range n.rules {
		if r.matches(addr) {
			c.rules = append(c.rules, r)
		}
	}
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c
}

func (n *FaultyNetwork) forget(c *faultConn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// killRule executes a FaultKill trigger exactly once.
func (n *FaultyNetwork) killRule(r *FaultRule) {
	r.killOnce.Do(func() {
		match := r.Match
		if match == nil {
			match = func(Addr) bool { return true }
		}
		n.Kill(match)
	})
}

type faultListener struct {
	net   *FaultyNetwork
	inner Listener
	addr  Addr
}

func (l *faultListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(c, l.addr), nil
}

func (l *faultListener) Addr() Addr { return l.addr }

func (l *faultListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l)
	l.net.mu.Unlock()
	return l.inner.Close()
}

// faultConn decorates one connection's send path with the matching
// rules. Faults are injected on Send only: the receive side observes
// them as missing, late or repeated messages, exactly as a remote
// failure would look.
type faultConn struct {
	net   *FaultyNetwork
	inner Conn
	addr  Addr
	rules []*FaultRule
	rng   *rand.Rand // guarded by Send's single-caller contract

	mu   sync.Mutex
	sent int
}

// SendRetainsBuffer defers to the inner connection so the comm layer's
// buffer-recycling decision stays correct under injection.
func (c *faultConn) SendRetainsBuffer() bool {
	if sr, ok := c.inner.(SendRetainer); ok {
		return sr.SendRetainsBuffer()
	}
	return true
}

func (c *faultConn) hit(r *FaultRule) bool {
	return r.Prob == 0 || c.rng.Float64() < r.Prob
}

func (c *faultConn) Send(b []byte) error {
	c.mu.Lock()
	c.sent++
	n := c.sent
	c.mu.Unlock()
	for _, r := range c.rules {
		if n <= r.AfterMsgs {
			continue
		}
		switch r.Kind {
		case FaultKill:
			// The triggering message is lost with the peer.
			c.net.killRule(r)
			return fmt.Errorf("transport: fault: peer %q killed: %w", c.addr, ErrClosed)
		case FaultDrop:
			if c.hit(r) {
				// Silent loss: the sender believes the write succeeded.
				// On retaining transports the dropped buffer simply never
				// re-enters circulation, which is safe (never pooled).
				return nil
			}
		case FaultDelay:
			time.Sleep(r.Delay + time.Duration(len(b))*r.PerByte)
		case FaultDuplicate:
			if c.hit(r) {
				// Deliver an independent copy first so pool ownership of
				// b (which transfers on the real Send below) is intact.
				cp := make([]byte, len(b))
				copy(cp, b)
				if err := c.inner.Send(cp); err != nil {
					return err
				}
			}
		}
	}
	return c.inner.Send(b)
}

func (c *faultConn) Recv() ([]byte, error) {
	return c.inner.Recv()
}

func (c *faultConn) Close() error {
	c.net.forget(c)
	return c.inner.Close()
}
