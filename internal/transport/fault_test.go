package transport

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// dialPair sets up a listener at addr and returns the dialed conn and
// the accepted conn.
func dialPair(t *testing.T, n Network, addr Addr) (Conn, Conn) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	dialed, err := n.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-accepted:
		return dialed, c
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	return nil, nil
}

func TestFaultDropAfterK(t *testing.T) {
	n := NewFaulty(NewMem(), 1, &FaultRule{
		Match:     func(a Addr) bool { return a == "victim" },
		Kind:      FaultDrop,
		AfterMsgs: 2,
	})
	defer n.Close()
	d, a := dialPair(t, n, "victim")
	for i := 0; i < 5; i++ {
		if err := d.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Only the first two messages arrive; the rest were dropped silently.
	for i := 0; i < 2; i++ {
		b, err := a.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(i) {
			t.Fatalf("got message %d, want %d", b[0], i)
		}
	}
	got := make(chan []byte, 1)
	go func() {
		if b, err := a.Recv(); err == nil {
			got <- b
		}
	}()
	select {
	case b := <-got:
		t.Fatalf("message %d should have been dropped", b[0])
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFaultDropDoesNotAffectOtherAddrs(t *testing.T) {
	n := NewFaulty(NewMem(), 1, &FaultRule{
		Match: func(a Addr) bool { return strings.HasPrefix(string(a), "comm/") },
		Kind:  FaultDrop,
	})
	defer n.Close()
	d, a := dialPair(t, n, "blockmanager/0")
	if err := d.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	b, err := a.Recv()
	if err != nil || string(b) != "ok" {
		t.Fatalf("unmatched addr was faulted: %q, %v", b, err)
	}
}

func TestFaultDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	n := NewFaulty(NewMem(), 1, &FaultRule{Kind: FaultDelay, Delay: delay})
	defer n.Close()
	d, a := dialPair(t, n, "x")
	start := time.Now()
	if err := d.Send([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < delay {
		t.Fatalf("delayed send arrived in %v, want >= %v", e, delay)
	}
}

func TestFaultDuplicate(t *testing.T) {
	n := NewFaulty(NewMem(), 1, &FaultRule{Kind: FaultDuplicate})
	defer n.Close()
	d, a := dialPair(t, n, "x")
	if err := d.Send([]byte("m")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b, err := a.Recv()
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if string(b) != "m" {
			t.Fatalf("copy %d corrupted: %q", i, b)
		}
	}
}

func TestFaultKillAfterK(t *testing.T) {
	n := NewFaulty(NewMem(), 1, &FaultRule{
		Match:     func(a Addr) bool { return a == "victim" },
		Kind:      FaultKill,
		AfterMsgs: 1,
	})
	defer n.Close()
	d, _ := dialPair(t, n, "victim")
	if err := d.Send([]byte("first")); err != nil {
		t.Fatalf("send before kill threshold: %v", err)
	}
	err := d.Send([]byte("second"))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("send past kill threshold: got %v, want ErrClosed", err)
	}
	// The peer is gone for good: dialing it again fails too.
	if _, err := n.Dial("victim"); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial of killed peer: got %v, want ErrClosed", err)
	}
	if _, err := n.Listen("victim"); !errors.Is(err, ErrClosed) {
		t.Fatalf("listen at killed addr: got %v, want ErrClosed", err)
	}
	// Unmatched addrs still work.
	d2, a2 := dialPair(t, n, "healthy")
	if err := d2.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKillSeversLiveConns(t *testing.T) {
	n := NewFaulty(NewMem(), 1)
	defer n.Close()
	d, a := dialPair(t, n, "victim")
	recvErr := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		recvErr <- err
	}()
	n.Kill(func(addr Addr) bool { return addr == "victim" })
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("Recv on killed conn returned a message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not observe the kill")
	}
	if err := d.Send([]byte("m")); err == nil {
		// mem conns may accept one buffered send; the peer is still dead.
		if _, err := n.Dial("victim"); err == nil {
			t.Fatal("dial of killed peer succeeded")
		}
	}
}

func TestFaultDeterministicProb(t *testing.T) {
	run := func() []int {
		n := NewFaulty(NewMem(), 42, &FaultRule{Kind: FaultDrop, Prob: 0.5})
		defer n.Close()
		d, a := dialPair(t, n, "x")
		for i := 0; i < 32; i++ {
			if err := d.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		var got []int
		for {
			b, err := a.Recv()
			if err != nil {
				return got
			}
			got = append(got, int(b[0]))
		}
	}
	first := run()
	second := run()
	if len(first) == 0 || len(first) == 32 {
		t.Fatalf("Prob=0.5 dropped %d/32 — rule not engaging", 32-len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("same seed produced different schedules: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", first, second)
		}
	}
}

// The wrapper must preserve the inner transport's buffer-ownership
// contract so comm's pool recycling stays sound under injection.
func TestFaultSendRetainsBufferPassthrough(t *testing.T) {
	mem := NewFaulty(NewMem(), 1)
	defer mem.Close()
	d, _ := dialPair(t, mem, "x")
	if sr, ok := d.(SendRetainer); !ok || !sr.SendRetainsBuffer() {
		t.Fatal("faulty mem conn should retain buffers like memConn")
	}
	tcp := NewFaulty(NewTCP(), 1)
	defer tcp.Close()
	d2, _ := dialPair(t, tcp, "t")
	if sr, ok := d2.(SendRetainer); !ok || sr.SendRetainsBuffer() {
		t.Fatal("faulty tcp conn should copy buffers like tcpConn")
	}
}
