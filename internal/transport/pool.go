package transport

// Wire-buffer pool shared by the transports and the comm layer.
//
// The reduction hot path moves one wire buffer per ring step; without
// recycling, every step allocates (and for the in-memory transport the
// sender's buffer is handed to the receiver, so the sender can never
// reuse it). The pool closes the loop: encoders take buffers with
// GetBuf, ownership flows with the message, and whoever finishes with
// the bytes calls PutBuf. At steady state a ring channel circulates a
// couple of right-sized buffers with no allocation at all.
//
// Buffers are bucketed by power-of-two capacity. Buckets are bounded
// channels rather than sync.Pools so that Get/Put never allocate the
// interface box a sync.Pool of slices would; a full bucket drops the
// buffer to the garbage collector, so parked memory stays bounded.

const (
	minBufBucket = 6  // 64 B
	maxBufBucket = 26 // 64 MiB
)

var bufBuckets [maxBufBucket + 1]chan []byte

func init() {
	for b := minBufBucket; b <= maxBufBucket; b++ {
		// Deep buckets for small buffers, shallower as sizes grow so a
		// burst of huge buffers cannot park gigabytes. The mid tier
		// still fits a P-channel ring's worth of MiB-scale segments
		// (the paper's sweet spot) in circulation, and the chunk tier
		// (64 KiB – 1 MiB, where the pipelined collectives cut their
		// frames) is deepened further: double buffering keeps ~3 chunk
		// buffers per direction per channel in flight, so a P=4 ring
		// with traffic in both directions circulates ~24 chunk buffers
		// without ever dropping one to the garbage collector.
		depth := 64
		switch {
		case b >= 24: // >= 16 MiB
			depth = 4
		case b >= 21: // 2–8 MiB
			depth = 32
		case b >= 16 && b <= 20: // 64 KiB – 1 MiB: pipelined chunk frames
			depth = 128
		}
		bufBuckets[b] = make(chan []byte, depth)
	}
}

// ceilBucket returns the smallest bucket whose capacity covers n.
func ceilBucket(n int) int {
	b := minBufBucket
	for b <= maxBufBucket && (1<<b) < n {
		b++
	}
	return b
}

// GetBuf returns a buffer of length n, recycled from the pool when one
// of sufficient capacity is parked, freshly allocated otherwise. The
// contents are unspecified; callers that need zeroed memory must clear
// it themselves.
func GetBuf(n int) []byte {
	b := ceilBucket(n)
	if b > maxBufBucket {
		return make([]byte, n)
	}
	select {
	case buf := <-bufBuckets[b]:
		guardUnpark(buf)
		return buf[:n]
	default:
	}
	return make([]byte, n, 1<<b)
}

// PutBuf parks buf for reuse by a later GetBuf. Callers must not touch
// buf afterwards: it may be handed out, resliced and overwritten at any
// moment. Buffers outside the pooled size range, or whose bucket is
// full, are dropped for the garbage collector to reclaim. Under -race
// builds, parking the same backing array twice — the signature of a
// double release or of releasing a buffer something else still aliases
// — panics instead of poisoning the pool.
func PutBuf(buf []byte) {
	c := cap(buf)
	if c < 1<<minBufBucket || c > 1<<maxBufBucket {
		return
	}
	// File under the largest bucket the capacity fully covers, so a
	// GetBuf from that bucket is guaranteed to fit.
	b := ceilBucket(c)
	if (1 << b) > c {
		b--
	}
	if b < minBufBucket {
		return
	}
	guardPark(buf)
	select {
	case bufBuckets[b] <- buf[:cap(buf)]:
	default:
		guardUnpark(buf)
	}
}

// SendRetainer is implemented by Conns that report whether Send keeps a
// reference to the caller's buffer after it returns. The in-memory
// transport hands the very same slice to the receiver (retains); the
// TCP transport copies into the socket before returning (does not).
// Conns that do not implement the interface are assumed to retain, the
// conservative default.
type SendRetainer interface {
	SendRetainsBuffer() bool
}
