package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// networks under test, constructed fresh per subtest.
func networks() map[string]func() Network {
	return map[string]func() Network{
		"mem": func() Network { return NewMem() },
		"tcp": func() Network { return NewTCP() },
	}
}

func TestEcho(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			l, err := n.Listen("srv")
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				for {
					b, err := c.Recv()
					if err != nil {
						return
					}
					c.Send(b)
				}
			}()
			c, err := n.Dial("srv")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				msg := []byte(fmt.Sprintf("message-%d", i))
				if err := c.Send(append([]byte(nil), msg...)); err != nil {
					t.Fatal(err)
				}
				got, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("echo %d: got %q want %q", i, got, msg)
				}
			}
		})
	}
}

func TestOrderingUnderLoad(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			l, _ := n.Listen("srv")
			const msgs = 2000
			done := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					done <- err
					return
				}
				for i := 0; i < msgs; i++ {
					b, err := c.Recv()
					if err != nil {
						done <- fmt.Errorf("recv %d: %w", i, err)
						return
					}
					if want := fmt.Sprintf("%08d", i); string(b) != want {
						done <- fmt.Errorf("out of order: got %q want %q", b, want)
						return
					}
				}
				done <- nil
			}()
			c, err := n.Dial("srv")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < msgs; i++ {
				if err := c.Send([]byte(fmt.Sprintf("%08d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDialUnknownAddr(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if _, err := n.Dial("nobody"); err == nil {
				t.Fatal("Dial of unknown addr should fail")
			}
		})
	}
}

func TestDuplicateListen(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if _, err := n.Listen("a"); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Listen("a"); err == nil {
				t.Fatal("duplicate Listen should fail")
			}
		})
	}
}

func TestLargeMessage(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			l, _ := n.Listen("srv")
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				b, err := c.Recv()
				if err != nil {
					return
				}
				c.Send(b)
			}()
			c, err := n.Dial("srv")
			if err != nil {
				t.Fatal(err)
			}
			big := make([]byte, 4<<20)
			for i := range big {
				big[i] = byte(i * 31)
			}
			want := append([]byte(nil), big...)
			if err := c.Send(big); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("large message corrupted in transit")
			}
		})
	}
}

func TestMemCloseUnblocksRecv(t *testing.T) {
	n := NewMem()
	defer n.Close()
	l, _ := n.Listen("srv")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	errc := make(chan error, 1)
	go func() {
		_, err := srv.Recv()
		errc <- err
	}()
	time.Sleep(time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("Recv after peer close: got %v want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after peer Close")
	}
}

func TestMemDrainAfterClose(t *testing.T) {
	n := NewMem()
	defer n.Close()
	l, _ := n.Listen("srv")
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	if err := c.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	got, err := srv.Recv()
	if err != nil {
		t.Fatalf("Recv of queued message after close: %v", err)
	}
	if string(got) != "queued" {
		t.Fatalf("got %q", got)
	}
	if _, err := srv.Recv(); err != ErrClosed {
		t.Fatalf("second Recv: got %v want ErrClosed", err)
	}
}

func TestMemShapeDelaysDelivery(t *testing.T) {
	n := NewMemShaped(Shape{Latency: 20 * time.Millisecond})
	defer n.Close()
	l, _ := n.Listen("srv")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		b, _ := c.Recv()
		c.Send(b)
	}()
	c, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Send([]byte("x"))
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	// Round trip crosses two shaped hops.
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("round trip %v, want >= 40ms with 20ms per-hop latency", d)
	}
}

func TestConcurrentConns(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			l, _ := n.Listen("srv")
			go func() {
				for {
					c, err := l.Accept()
					if err != nil {
						return
					}
					go func(c Conn) {
						for {
							b, err := c.Recv()
							if err != nil {
								return
							}
							c.Send(b)
						}
					}(c)
				}
			}()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c, err := n.Dial("srv")
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					for i := 0; i < 100; i++ {
						msg := fmt.Sprintf("g%d-m%d", g, i)
						if err := c.Send([]byte(msg)); err != nil {
							t.Errorf("send: %v", err)
							return
						}
						got, err := c.Recv()
						if err != nil {
							t.Errorf("recv: %v", err)
							return
						}
						if string(got) != msg {
							t.Errorf("got %q want %q", got, msg)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	l, _ := n.Listen("srv")
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	errc := make(chan error, 1)
	go func() {
		_, err := srv.Recv()
		errc <- err
	}()
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Recv returned no error after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after TCP peer close")
	}
}

func TestListenerAddrAndClose(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			l, err := n.Listen("a")
			if err != nil {
				t.Fatal(err)
			}
			if l.Addr() != "a" {
				t.Fatalf("Addr = %q", l.Addr())
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// The address is free again after Close.
			if _, err := n.Listen("a"); err != nil {
				t.Fatalf("re-Listen after Close: %v", err)
			}
			// Dial of a closed-then-reopened address succeeds; dial of a
			// never-opened one still fails.
			if _, err := n.Dial("never"); err == nil {
				t.Fatal("Dial of unknown addr should fail")
			}
		})
	}
}

func TestNetworkCloseStopsDialAndListen(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			if _, err := n.Listen("x"); err != nil {
				t.Fatal(err)
			}
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Listen("y"); err == nil {
				t.Fatal("Listen after network Close should fail")
			}
			if _, err := n.Dial("x"); err == nil {
				t.Fatal("Dial after network Close should fail")
			}
		})
	}
}
