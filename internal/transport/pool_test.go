package transport

import "testing"

func TestGetBufSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 20, 1<<20 + 4} {
		b := GetBuf(n)
		if len(b) != n {
			t.Errorf("GetBuf(%d): len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Errorf("GetBuf(%d): cap = %d", n, cap(b))
		}
		PutBuf(b)
	}
}

// A released buffer must satisfy the next request of any size its
// bucket covers — this is what keeps the ring steady state at zero
// allocations even when wire frames are a few bytes over a power of two.
func TestPutBufReuseWithinBucket(t *testing.T) {
	const n = 1<<20 + 4 // a ring wire frame: 4-byte count + 1 MiB payload
	drain := drainBucket(t, n)
	b := GetBuf(n)
	p := &b[0]
	PutBuf(b)
	b2 := GetBuf(1<<20 + 1) // different size, same 2 MiB bucket
	if &b2[0] != p {
		t.Error("released buffer not reused for a smaller request in the same bucket")
	}
	PutBuf(b2)
	undrain(drain)
}

// Oddly-sized capacities (e.g. from an append that outgrew a pooled
// buffer) must be filed under a bucket they fully cover, so a later
// GetBuf never receives a buffer with too little capacity.
func TestPutBufOddCapacityNeverUndersized(t *testing.T) {
	odd := make([]byte, 3000) // cap 3000 < 4096: must file under 2048
	PutBuf(odd)
	for i := 0; i < 70; i++ {
		b := GetBuf(4096)
		if cap(b) < 4096 {
			t.Fatalf("GetBuf(4096) returned cap %d", cap(b))
		}
		PutBuf(b)
	}
}

// Tiny and huge buffers are clamped/dropped without panicking.
func TestPutBufExtremes(t *testing.T) {
	PutBuf(nil)
	PutBuf(make([]byte, 0, 8))     // below the smallest bucket: dropped
	PutBuf(make([]byte, 1, 1<<27)) // above the largest bucket: dropped
	b := GetBuf(1<<26 + 1)         // larger than any bucket: plain make
	if len(b) != 1<<26+1 {
		t.Fatalf("GetBuf over max bucket: len %d", len(b))
	}
}

// drainBucket empties the bucket covering size-n requests (deepest
// bucket is 64) so reuse assertions observe only this test's releases.
func drainBucket(t *testing.T, n int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; i < 70; i++ {
		out = append(out, GetBuf(n))
	}
	return out
}

func undrain(bufs [][]byte) {
	for _, b := range bufs {
		PutBuf(b)
	}
}
