package mllib

import (
	"fmt"
	"io"
	"testing"

	"sparker/internal/eventlog"
	"sparker/internal/rdd"
	"sparker/internal/trace"
)

// TestTracedTrainingEndToEnd is the tentpole's integration check on the
// real training stack: one traced logistic-regression run on a
// 3-executor cluster must produce a single trace whose span chain runs
// train → iteration → aggregate → stage → task → ring-step, with the
// executor-side spans stitched to the driver side purely by the span
// IDs propagated through the task and ring wire formats.
func TestTracedTrainingEndToEnd(t *testing.T) {
	exp := &trace.MemExporter{}
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             "ml-traced",
		NumExecutors:     3,
		CoresPerExecutor: 2,
		RingParallelism:  2,
		Tracer:           trace.New(exp),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()

	const iters = 3
	train := trainingSet(ctx, 300, 2, 6)
	if _, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: iters, StepSize: 2, Strategy: StrategySplit},
	}); err != nil {
		t.Fatal(err)
	}

	spans := exp.Spans()
	byID := map[uint64]trace.Span{}
	for _, s := range spans {
		byID[s.SpanID] = s
	}

	trains := exp.Named("train")
	if len(trains) != 1 {
		t.Fatalf("%d train spans, want 1", len(trains))
	}
	root := trains[0]
	if m, _ := root.Attr("model"); m != "gradient-descent" {
		t.Errorf("train model attr = %q", m)
	}
	if s, _ := root.Attr("strategy"); s != "split" {
		t.Errorf("train strategy attr = %q", s)
	}

	iterations := exp.Named("iteration")
	if len(iterations) != iters {
		t.Fatalf("%d iteration spans, want %d", len(iterations), iters)
	}
	for _, it := range iterations {
		if it.ParentID != root.SpanID {
			t.Errorf("iteration parented on %x, want train %x", it.ParentID, root.SpanID)
		}
	}

	// Walk each ring-step's ancestry to the root and record the chain of
	// span names. Every hop must exist (no orphans) and stay inside the
	// train's trace.
	steps := exp.Named("ring-step")
	if len(steps) == 0 {
		t.Fatal("no ring-step spans")
	}
	wantChain := "ring-step<task<stage<aggregate<iteration<train"
	for _, s := range steps {
		if s.TraceID != root.TraceID {
			t.Fatalf("ring-step escaped the train trace: %x vs %x", s.TraceID, root.TraceID)
		}
		chain := s.Name
		cur := s
		for cur.ParentID != 0 {
			p, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %s has unknown parent %x (chain so far %q)",
					cur.Name, cur.ParentID, chain)
			}
			chain += "<" + p.Name
			cur = p
		}
		if chain != wantChain {
			t.Fatalf("ring-step ancestry %q, want %q", chain, wantChain)
		}
	}

	// Task spans must span at least 2 executors (the exec attr drives
	// the Chrome track assignment).
	execs := map[string]bool{}
	for _, ts := range exp.Named("task") {
		if v, ok := ts.Attr("exec"); ok {
			execs[v] = true
		}
	}
	if len(execs) < 2 {
		t.Fatalf("task spans landed on %d executors, want >= 2", len(execs))
	}

	// The Chrome export of this run must show the cross-track stitches:
	// driver stage → executor task parents prove the ID propagation
	// crossed the transport.
	events := make([]eventlog.Event, 0, len(spans))
	for _, s := range spans {
		events = append(events, trace.SpanToEvent(s))
	}
	sum, err := trace.WriteChromeTrace(io.Discard, events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Orphans != 0 {
		t.Errorf("chrome export found %d orphan spans", sum.Orphans)
	}
	if sum.CrossTrackParents == 0 {
		t.Error("no cross-track parent stitches in the chrome export")
	}
	if sum.RingSteps != len(steps) {
		t.Errorf("chrome export saw %d ring-steps, exporter saw %d", sum.RingSteps, len(steps))
	}
	execTracks := 0
	for _, track := range sum.Tracks {
		if track != "driver" {
			execTracks++
		}
	}
	if execTracks < 2 {
		t.Errorf("chrome export has %d executor tracks, want >= 2 (tracks %v)",
			execTracks, sum.Tracks)
	}

	// Ring-step latency histograms merged from the executors must have
	// observed exactly the exported steps.
	if got := ctx.MergedMetrics().Histogram("ring.step.ns").Count(); got != int64(len(steps)) {
		t.Errorf("merged ring-step histogram has %d samples, exporter saw %d spans",
			got, len(steps))
	}
}

// TestUntracedTrainingStaysSilent pins the disabled default: the same
// training run with no tracer emits nothing and still converges.
func TestUntracedTrainingStaysSilent(t *testing.T) {
	ctx := testContext(t, 2, 2)
	train := trainingSet(ctx, 200, 2, 4)
	m, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 5, StepSize: 2, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Losses) != 5 {
		t.Fatalf("%d losses", len(m.Losses))
	}
}

// TestTracedStrategiesMatchUntraced guards against instrumentation
// perturbing the math: traced and untraced runs of every strategy must
// produce bit-identical weights.
func TestTracedStrategiesMatchUntraced(t *testing.T) {
	for _, s := range []Strategy{StrategyTree, StrategyTreeIMM, StrategySplit} {
		t.Run(s.String(), func(t *testing.T) {
			cfg := LogisticRegressionConfig{
				NumFeatures: 2,
				GD:          GDConfig{Iterations: 5, StepSize: 2, Strategy: s},
			}
			run := func(tr *trace.Tracer) []float64 {
				rc, err := rdd.NewContext(rdd.Config{
					Name:             fmt.Sprintf("ml-parity-%v-%v", s, tr.Enabled()),
					NumExecutors:     3,
					CoresPerExecutor: 2,
					Tracer:           tr,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer rc.Close()
				m, err := TrainLogisticRegression(trainingSet(rc, 200, 2, 4), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return m.Weights
			}
			plain := run(nil)
			traced := run(trace.New(&trace.MemExporter{}))
			for i := range plain {
				if plain[i] != traced[i] {
					t.Fatalf("weight %d: untraced %v, traced %v", i, plain[i], traced[i])
				}
			}
		})
	}
}
