package mllib

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

func TestLinearModelSaveLoad(t *testing.T) {
	m := &LinearModel{
		Weights:   []float64{1.5, -2.5, 0, math.Pi},
		Losses:    []float64{0.9, 0.5, 0.3},
		Threshold: 0.5,
		kind:      "logistic-regression",
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLinearModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Weights, m.Weights) ||
		!reflect.DeepEqual(got.Losses, m.Losses) ||
		got.Threshold != m.Threshold || got.Kind() != m.Kind() {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	// The loaded model predicts identically.
	x, _ := linalg.NewSparse(4, []int32{0, 3}, []float64{1, 1})
	if got.Predict(x) != m.Predict(x) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestLDAModelSaveLoad(t *testing.T) {
	m := &LDAModel{
		K:     2,
		Vocab: 3,
		Lambda: [][]float64{
			{1, 2, 3},
			{4, 5, 6},
		},
		Bounds: []float64{-3, -2.5},
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLDAModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 2 || got.Vocab != 3 || !reflect.DeepEqual(got.Lambda, m.Lambda) || !reflect.DeepEqual(got.Bounds, m.Bounds) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadLinearModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := LoadLDAModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
	// Kind confusion: an LDA file is not a linear model.
	lda := &LDAModel{K: 1, Vocab: 1, Lambda: [][]float64{{1}}}
	var buf bytes.Buffer
	if err := lda.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinearModel(&buf); err == nil {
		t.Fatal("kind mismatch should fail")
	}
	// Truncated file.
	var buf2 bytes.Buffer
	m := &LinearModel{Weights: []float64{1, 2, 3}, kind: "svm"}
	if err := m.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-5]
	if _, err := LoadLinearModel(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file should fail")
	}
}

func TestLinearRegressionLearns(t *testing.T) {
	ctx := testContext(t, 2, 2)
	// Target: y = 2*x0 - x1.
	train := regressionSet(ctx, 300, 2)
	m, err := TrainLinearRegression(train, LinearRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 150, StepSize: 8, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 0.2 || math.Abs(m.Weights[1]+1) > 0.2 {
		t.Fatalf("weights %v, want ≈ [2, -1]", m.Weights)
	}
	if m.Losses[len(m.Losses)-1] >= m.Losses[0] {
		t.Fatal("loss did not decrease")
	}
	if _, err := TrainLinearRegression(train, LinearRegressionConfig{NumFeatures: 0}); err == nil {
		t.Fatal("zero features should fail")
	}
}

func TestAllReduceStrategyTrains(t *testing.T) {
	ctx := testContext(t, 3, 2)
	train := trainingSet(ctx, 300, 2, 6)
	split, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 10, StepSize: 2, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	allred, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 10, StepSize: 2, Strategy: StrategyAllReduce},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range split.Weights {
		if math.Abs(split.Weights[i]-allred.Weights[i]) > 1e-8 {
			t.Fatalf("allreduce strategy diverges from split at weight %d", i)
		}
	}
	if StrategyAllReduce.String() != "allreduce" {
		t.Fatal("strategy name wrong")
	}
}

// regressionSet builds y = 2*x0 - x1 samples on a lattice.
func regressionSet(ctx *rdd.Context, n, dim int) *rdd.RDD[LabeledPoint] {
	return rdd.Generate(ctx, 4, func(part int) ([]LabeledPoint, error) {
		lo := part * n / 4
		hi := (part + 1) * n / 4
		out := make([]LabeledPoint, 0, hi-lo)
		for i := lo; i < hi; i++ {
			x0 := float64(i%11)/11 - 0.5
			x1 := float64(i%7)/7 - 0.5
			sv, err := linalg.NewSparse(dim, []int32{0, 1}, []float64{x0, x1})
			if err != nil {
				return nil, err
			}
			out = append(out, LabeledPoint{Label: 2*x0 - x1, Features: sv})
		}
		return out, nil
	}).Cache()
}
