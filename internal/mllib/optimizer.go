package mllib

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sparker/internal/collective"
	"sparker/internal/core"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/trace"
)

// Strategy selects the aggregation implementation a training run uses —
// the single switch the paper says MLlib users flip to enjoy split
// aggregation ("MLlib users only need a configuration parameter").
type Strategy int

// Aggregation strategies.
const (
	// StrategyTree is vanilla Spark treeAggregate.
	StrategyTree Strategy = iota
	// StrategyTreeIMM is tree aggregation with in-memory merge.
	StrategyTreeIMM
	// StrategySplit is Sparker's split aggregation over the PDR.
	StrategySplit
	// StrategyAllReduce is the allreduce extension: split aggregation
	// whose result stays resident on every executor, removing the
	// driver gather (the paper's §6 future-work direction).
	StrategyAllReduce
)

// ParseStrategy converts a config-string ("tree", "imm"/"tree+imm",
// "split", "allreduce") into a Strategy — the single knob the paper
// says MLlib users flip.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "tree":
		return StrategyTree, nil
	case "imm", "tree+imm":
		return StrategyTreeIMM, nil
	case "split":
		return StrategySplit, nil
	case "allreduce":
		return StrategyAllReduce, nil
	default:
		return 0, fmt.Errorf("mllib: unknown strategy %q (tree, imm, split, allreduce)", s)
	}
}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyTree:
		return "tree"
	case StrategyTreeIMM:
		return "tree+imm"
	case StrategySplit:
		return "split"
	case StrategyAllReduce:
		return "allreduce"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CoreStrategy maps an mllib strategy to the unified core.Aggregate
// strategy.
func (s Strategy) CoreStrategy() (core.Strategy, error) {
	switch s {
	case StrategyTree:
		return core.StrategyTree, nil
	case StrategyTreeIMM:
		return core.StrategyIMM, nil
	case StrategySplit:
		return core.StrategySplit, nil
	case StrategyAllReduce:
		return core.StrategyAllReduce, nil
	default:
		return 0, fmt.Errorf("mllib: unknown strategy %d", int(s))
	}
}

// AggregateF64 reduces a flattened []float64 aggregator over an RDD
// using the chosen strategy. It is the shared plumbing of all three
// models: each builds its per-iteration sufficient statistics as one
// flat vector, which is exactly the shape that makes splitOp/concatOp
// trivial (Figure 7's splitA/concatA). All strategies route through the
// unified core.Aggregate, so training inherits its per-step deadlines
// and ring→tree fallback.
func AggregateF64[T any](r *rdd.RDD[T], dim int, seqOp func(acc []float64, v T) []float64, s Strategy, depth, parallelism int, extra ...core.AggOption) ([]float64, error) {
	return AggregateF64Ctx(context.Background(), r, dim, seqOp, s, depth, parallelism, extra...)
}

// f64Ops is the shared fused collective implementation for the flat
// []float64 aggregators of every mllib model. Passing it as
// AggFuncs.Ops replaces the generic serde path in the ring stage with
// the chunked zero-decode reduce and makes the aggregators eligible for
// wire compression.
var f64Ops = collective.F64Ops()

// AggregateF64Ctx is AggregateF64 with an explicit context: cancellation
// bounds the ring collectives, and a trace span carried in ctx (an
// iteration span, typically) becomes the parent of the per-call
// "aggregate" span so whole training runs stitch into one timeline.
// extra options (e.g. core.WithCompression) are appended after the
// strategy options, so they may override any of them.
func AggregateF64Ctx[T any](ctx context.Context, r *rdd.RDD[T], dim int, seqOp func(acc []float64, v T) []float64, s Strategy, depth, parallelism int, extra ...core.AggOption) ([]float64, error) {
	cs, err := s.CoreStrategy()
	if err != nil {
		return nil, err
	}
	opts := append([]core.AggOption{
		core.WithStrategy(cs), core.WithDepth(depth), core.WithParallelism(parallelism),
	}, extra...)
	return core.Aggregate(ctx, r, core.AggFuncs[T, []float64, []float64]{
		Zero:     func() []float64 { return make([]float64, dim) },
		SeqOp:    seqOp,
		MergeOp:  core.AddF64,
		SplitOp:  core.SplitSliceCopy[float64],
		ReduceOp: core.AddF64,
		ConcatOp: core.ConcatSlices[float64],
		Ops:      &f64Ops,
	}, opts...)
}

// startTrainSpan opens the root "train" span for one optimizer run and
// returns the context iteration spans derive from. Everything no-ops
// (and the context stays bare) when the rdd context has no tracer. A
// non-nil base context becomes the run's root context, so cancelling
// it cancels every per-iteration collective the run launches.
func startTrainSpan(rc *rdd.Context, model string, s Strategy, base context.Context) (*trace.Tracer, *trace.ActiveSpan, context.Context) {
	if base == nil {
		base = context.Background()
	}
	tr := rc.Tracer()
	root := tr.StartRoot("train")
	root.SetAttr("model", model)
	root.SetAttr("strategy", s.String())
	return tr, root, trace.WithSpan(base, root)
}

// startIteration opens one per-iteration span under the train root.
func startIteration(tr *trace.Tracer, root *trace.ActiveSpan, tctx context.Context, iter int) (*trace.ActiveSpan, context.Context) {
	it := tr.StartSpan("iteration", root.Context())
	it.SetInt("iter", int64(iter))
	return it, trace.WithSpan(tctx, it)
}

// GDConfig configures RunGradientDescent.
type GDConfig struct {
	// StepSize is the base learning rate (default 1.0).
	StepSize float64
	// Iterations is the number of outer iterations (default 10).
	Iterations int
	// RegParam is passed to the updater (default 0).
	RegParam float64
	// MiniBatchFraction subsamples each iteration (default 1.0, the
	// paper's SVM setting).
	MiniBatchFraction float64
	// Strategy picks the aggregation implementation.
	Strategy Strategy
	// Depth is the treeAggregate depth (default 2).
	Depth int
	// Parallelism is the split-aggregation ring parallelism (default:
	// context setting).
	Parallelism int
	// Seed drives mini-batch sampling.
	Seed int64
	// ConvergenceTol stops early when the relative weight change drops
	// below it (0 disables, matching fixed-iteration benchmarks).
	ConvergenceTol float64
	// Tenant charges the run's aggregation stages to the named
	// scheduler fair-share account (empty: default tenant). Set by
	// multi-tenant drivers such as sparker-serve.
	Tenant string
	// Ctx, when non-nil, bounds the run: each iteration checks it
	// before launching work and the per-iteration aggregations derive
	// from it, so cancelling Ctx aborts the run promptly with
	// context.Canceled (the server's DELETE /api/v1/jobs path).
	Ctx context.Context
	// StepDeadline bounds each ring collective step (core.WithDeadline
	// semantics: zero keeps the core default, negative disables). Short
	// deadlines make fault demos degrade in seconds instead of minutes.
	StepDeadline time.Duration
	// Compression selects a wire codec for the per-iteration gradient
	// aggregation (ring strategies only; ignored by the tree paths). The
	// run is guarded: a non-finite loss, or a loss that rises for several
	// consecutive iterations, turns compression off for the rest of the
	// run and records metrics.CounterCompressDisabled — lossy codecs must
	// never convert a converging run into a diverging one silently.
	Compression collective.Compression
	// Packed selects the CSR compute plane (default PackedAuto: packed
	// whenever the Gradient has a fused kernel). The packed fold is
	// bitwise-identical to the per-point path, so results never depend
	// on this knob.
	Packed PackedMode
}

func (c *GDConfig) fill() {
	if c.StepSize == 0 {
		c.StepSize = 1.0
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.MiniBatchFraction == 0 {
		c.MiniBatchFraction = 1.0
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
}

// RunGradientDescent is MLlib's GradientDescent.runMiniBatchSGD: per
// iteration one aggregation computes (gradientSum, lossSum, count) over
// the (sampled) data against the current weights, then the updater
// steps. It returns the final weights and the per-iteration loss
// history.
func RunGradientDescent(data *rdd.RDD[LabeledPoint], grad Gradient, up Updater, initial []float64, cfg GDConfig) (finalW []float64, lossHist []float64, retErr error) {
	cfg.fill()
	dim := len(initial)
	if dim == 0 {
		return nil, nil, fmt.Errorf("mllib: empty initial weights")
	}
	weights := make([]float64, dim)
	copy(weights, initial)
	losses := make([]float64, 0, cfg.Iterations)

	tr, root, tctx := startTrainSpan(data.Context(), "gradient-descent", cfg.Strategy, cfg.Ctx)
	defer func() { root.EndErr(retErr) }()
	guard := newCompressGuard(cfg.Compression)

	var plan *packedPlan
	var kind linalg.CSRGradKind
	if k, ok := packedKind(grad); ok && cfg.Packed != PackedOff {
		kind = k
		plan = newPackedPlan(data, dim)
		defer plan.release()
	} else if cfg.Packed == PackedOn {
		return nil, nil, fmt.Errorf("mllib: Packed=on but %T has no fused kernel", grad)
	}
	root.SetAttr("packed", fmt.Sprint(plan != nil))

	for iter := 1; iter <= cfg.Iterations; iter++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("mllib: iteration %d: %w", iter, err)
			}
		}
		w := make([]float64, dim)
		copy(w, weights) // snapshot captured by this iteration's tasks

		it, ictx := startIteration(tr, root, tctx, iter)
		extra := guard.options()
		if cfg.Tenant != "" {
			extra = append(extra, core.WithTenant(cfg.Tenant))
		}
		if cfg.StepDeadline != 0 {
			extra = append(extra, core.WithDeadline(cfg.StepDeadline))
		}
		// Aggregator layout: [0,dim) gradient sum, [dim] loss sum,
		// [dim+1] sample count.
		var agg []float64
		var err error
		if plan != nil {
			// Packed plane: one fused kernel pass per partition, with
			// in-kernel minibatch sampling over the same RNG stream
			// sampleRDD would use.
			agg, err = AggregateF64Ctx(ictx, plan.packed, dim+2,
				packedGradSeqOp(kind, w, dim, cfg.MiniBatchFraction, cfg.Seed, iter),
				cfg.Strategy, cfg.Depth, cfg.Parallelism, extra...)
		} else {
			batch := data
			if cfg.MiniBatchFraction < 1.0 {
				batch = sampleRDD(data, cfg.MiniBatchFraction, cfg.Seed, iter)
			}
			agg, err = AggregateF64Ctx(ictx, batch, dim+2, func(acc []float64, p LabeledPoint) []float64 {
				loss := grad.Compute(p.Features, p.Label, w, acc[:dim])
				acc[dim] += loss
				acc[dim+1]++
				return acc
			}, cfg.Strategy, cfg.Depth, cfg.Parallelism, extra...)
		}
		if err != nil {
			it.EndErr(err)
			return nil, nil, fmt.Errorf("mllib: iteration %d: %w", iter, err)
		}
		count := agg[dim+1]
		if count == 0 {
			losses = append(losses, math.NaN())
			// A lossy codec can zero the aggregator's sample-count word
			// (top-k dropping the scalar tail); that must trip the
			// guardrail like any other non-finite loss, not bypass it.
			guard.observe(data.Context(), math.NaN())
			it.End()
			continue
		}
		gradient := agg[:dim]
		for i := range gradient {
			gradient[i] /= count
		}
		newW, regVal := up.Update(weights, gradient, cfg.StepSize, iter, cfg.RegParam)
		losses = append(losses, agg[dim]/count+regVal)
		guard.observe(data.Context(), losses[len(losses)-1])
		it.End()

		if cfg.ConvergenceTol > 0 && converged(weights, newW, cfg.ConvergenceTol) {
			weights = newW
			break
		}
		weights = newW
	}
	return weights, losses, nil
}

// compressGuardRises is how many consecutive loss increases the
// convergence guardrail tolerates before disabling compression. One
// rise is routine SGD noise; three in a row under a lossy codec is the
// signature of quantization noise overwhelming the signal.
const compressGuardRises = 3

// compressGuard is the optimizer-side convergence guardrail for wire
// compression: it watches the accepted loss sequence and permanently
// disables the codec for the rest of the run on a non-finite loss or
// compressGuardRises consecutive increases. Trips are observable via
// metrics.CounterCompressDisabled markers.
type compressGuard struct {
	comp     collective.Compression
	prevLoss float64
	hasPrev  bool
	rises    int
	off      bool
}

func newCompressGuard(c collective.Compression) *compressGuard {
	return &compressGuard{comp: c}
}

// options returns the aggregation options for the next iteration: the
// compression spec while the guard trusts it, nothing once tripped.
func (g *compressGuard) options() []core.AggOption {
	if g.off || g.comp.Codec == collective.CodecNone {
		return nil
	}
	return []core.AggOption{core.WithCompression(g.comp.Codec, g.comp)}
}

// observe feeds one accepted iteration's loss to the guardrail.
func (g *compressGuard) observe(rc *rdd.Context, loss float64) {
	if g.off || g.comp.Codec == collective.CodecNone {
		return
	}
	switch {
	case math.IsNaN(loss) || math.IsInf(loss, 0):
		g.trip(rc, fmt.Sprintf("non-finite loss under %s compression", g.comp.Codec))
	case g.hasPrev && loss > g.prevLoss:
		g.rises++
		if g.rises >= compressGuardRises {
			g.trip(rc, fmt.Sprintf("loss rose %d consecutive iterations under %s compression", g.rises, g.comp.Codec))
		}
	default:
		g.rises = 0
	}
	g.prevLoss, g.hasPrev = loss, true
}

func (g *compressGuard) trip(rc *rdd.Context, why string) {
	g.off = true
	rc.RecordMarker(metrics.CounterCompressDisabled, why)
}

// converged tests relative weight movement against tol.
func converged(prev, next []float64, tol float64) bool {
	var diff, norm float64
	for i := range prev {
		d := next[i] - prev[i]
		diff += d * d
		norm += next[i] * next[i]
	}
	return math.Sqrt(diff) < tol*math.Max(math.Sqrt(norm), 1)
}

// sampleRDD subsamples deterministically per (seed, iter, partition),
// so task retries observe identical batches — the determinism Spark
// gets from seeded samplers. It is the per-point fallback only: it
// allocates a fresh []LabeledPoint per iteration, which is exactly the
// churn the packed plane's samplePackedRows (pooled row indices over
// the resident CSR arenas, same RNG stream) eliminates.
func sampleRDD(data *rdd.RDD[LabeledPoint], frac float64, seed int64, iter int) *rdd.RDD[LabeledPoint] {
	return rdd.MapPartitions(data, func(part int, in []LabeledPoint) ([]LabeledPoint, error) {
		rng := rand.New(rand.NewSource(seed ^ int64(iter)*1_000_003 ^ int64(part)*7_777_777))
		out := make([]LabeledPoint, 0, int(float64(len(in))*frac)+1)
		for _, p := range in {
			if rng.Float64() < frac {
				out = append(out, p)
			}
		}
		return out, nil
	})
}
