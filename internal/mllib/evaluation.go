package mllib

import (
	"fmt"
	"sort"

	"sparker/internal/linalg"
)

// BinaryMetrics evaluates a binary classifier's scores against 0/1
// labels — the evaluation half of an ML library (MLlib's
// BinaryClassificationMetrics).
type BinaryMetrics struct {
	scores []float64
	labels []float64
	pos    int
}

// NewBinaryMetrics pairs scores (higher = more positive) with labels.
func NewBinaryMetrics(scores, labels []float64) (*BinaryMetrics, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("mllib: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("mllib: empty evaluation set")
	}
	m := &BinaryMetrics{
		scores: append([]float64(nil), scores...),
		labels: append([]float64(nil), labels...),
	}
	for _, l := range labels {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("mllib: label %v is not 0/1", l)
		}
		if l == 1 {
			m.pos++
		}
	}
	return m, nil
}

// EvaluateModel scores data with a linear model and builds metrics
// from its margins.
func EvaluateModel(m *LinearModel, data []LabeledPoint) (*BinaryMetrics, error) {
	scores := make([]float64, len(data))
	labels := make([]float64, len(data))
	for i, p := range data {
		scores[i] = m.Margin(p.Features)
		labels[i] = p.Label
	}
	return NewBinaryMetrics(scores, labels)
}

// ConfusionAt thresholds the scores and returns (tp, fp, tn, fn).
func (m *BinaryMetrics) ConfusionAt(threshold float64) (tp, fp, tn, fn int) {
	for i, s := range m.scores {
		predicted := s >= threshold
		actual := m.labels[i] == 1
		switch {
		case predicted && actual:
			tp++
		case predicted && !actual:
			fp++
		case !predicted && !actual:
			tn++
		default:
			fn++
		}
	}
	return tp, fp, tn, fn
}

// PrecisionRecallAt returns precision and recall at a threshold.
func (m *BinaryMetrics) PrecisionRecallAt(threshold float64) (precision, recall float64) {
	tp, fp, _, fn := m.ConfusionAt(threshold)
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// F1At returns the F1 score at a threshold.
func (m *BinaryMetrics) F1At(threshold float64) float64 {
	p, r := m.PrecisionRecallAt(threshold)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// AUC computes the area under the ROC curve via the rank statistic
// (equivalent to the Mann–Whitney U), with tie correction.
func (m *BinaryMetrics) AUC() float64 {
	n := len(m.scores)
	neg := n - m.pos
	if m.pos == 0 || neg == 0 {
		return 1 // degenerate: a single class is trivially separated
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.scores[idx[a]] < m.scores[idx[b]] })

	// Average ranks over ties, then sum positive ranks.
	var rankSum float64
	i := 0
	for i < n {
		j := i
		for j+1 < n && m.scores[idx[j+1]] == m.scores[idx[i]] {
			j++
		}
		avgRank := float64(i+j)/2 + 1 // ranks are 1-based
		for k := i; k <= j; k++ {
			if m.labels[idx[k]] == 1 {
				rankSum += avgRank
			}
		}
		i = j + 1
	}
	u := rankSum - float64(m.pos)*float64(m.pos+1)/2
	return u / (float64(m.pos) * float64(neg))
}

// SilhouetteApprox computes a cheap clustering quality score in [-1, 1]
// for a KMeans model over points: mean over points of
// (b − a) / max(a, b) with a = distance to own center and b = distance
// to the nearest other center (the simplified centroid-based
// silhouette).
func SilhouetteApprox(m *KMeansModel, points []linalg.SparseVector) float64 {
	if len(points) == 0 || len(m.Centers) < 2 {
		return 0
	}
	var total float64
	for _, x := range points {
		own := m.NearestCenter(x)
		a := sqDist(m.Centers[own], x)
		b := -1.0
		for c := range m.Centers {
			if c == own {
				continue
			}
			if d := sqDist(m.Centers[c], x); b < 0 || d < b {
				b = d
			}
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(len(points))
}
