package mllib

import (
	"fmt"
	"math"
	"sort"

	"sparker/internal/rdd"
)

// LDAConfig configures TrainLDA. The paper's Table 3 setting is K=100;
// the aggregator per iteration is the K×V expected-count matrix, which
// is what makes LDA-N (nytimes, V≈100k) reduction-bound.
type LDAConfig struct {
	// K is the topic count.
	K int
	// Vocab is the vocabulary size V.
	Vocab int
	// Alpha is the document-topic prior (default 1/K).
	Alpha float64
	// Eta is the topic-word prior (default 1/K).
	Eta float64
	// Iterations is the outer EM iteration count (default 10).
	Iterations int
	// InnerIters bounds the per-document fixed-point loop (default 20).
	InnerIters int
	// Strategy, Depth, Parallelism select the aggregation path.
	Strategy    Strategy
	Depth       int
	Parallelism int
	// Seed initializes lambda.
	Seed int64
}

func (c *LDAConfig) fill() error {
	if c.K <= 0 || c.Vocab <= 0 {
		return fmt.Errorf("mllib: LDA needs positive K and Vocab, got K=%d V=%d", c.K, c.Vocab)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0 / float64(c.K)
	}
	if c.Eta == 0 {
		c.Eta = 1.0 / float64(c.K)
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.InnerIters == 0 {
		c.InnerIters = 20
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	return nil
}

// LDAModel is a trained topic model.
type LDAModel struct {
	K, Vocab int
	// Lambda is the K×V variational parameter of the topic-word
	// Dirichlets.
	Lambda [][]float64
	// Bounds is the per-iteration corpus log-likelihood proxy (higher
	// is better; it should broadly improve over iterations).
	Bounds []float64
}

// TopicDistributions returns row-normalized topic-word distributions.
func (m *LDAModel) TopicDistributions() [][]float64 {
	out := make([][]float64, m.K)
	for k := range out {
		row := make([]float64, m.Vocab)
		var sum float64
		for _, v := range m.Lambda[k] {
			sum += v
		}
		for i, v := range m.Lambda[k] {
			row[i] = v / sum
		}
		out[k] = row
	}
	return out
}

// InferDoc estimates a document's topic mixture under the trained
// model: the variational E-step run to convergence against fixed
// lambda, returning the normalized gamma.
func (m *LDAModel) InferDoc(d Document, alpha float64, innerIters int) []float64 {
	if alpha <= 0 {
		alpha = 1.0 / float64(m.K)
	}
	if innerIters <= 0 {
		innerIters = 50
	}
	flatBeta := flatten(expDirichletExpectation(m.Lambda), m.Vocab)
	acc := make([]float64, m.K*m.Vocab+2)
	gamma := docEStep(d, flatBeta, acc, m.K, m.Vocab, alpha, innerIters)
	var sum float64
	for _, g := range gamma {
		sum += g
	}
	if sum == 0 {
		// Empty document: uniform mixture.
		out := make([]float64, m.K)
		for i := range out {
			out[i] = 1.0 / float64(m.K)
		}
		return out
	}
	for i := range gamma {
		gamma[i] /= sum
	}
	return gamma
}

// TopTerms returns the n highest-weight vocabulary ids of topic k.
func (m *LDAModel) TopTerms(k, n int) []int {
	idx := make([]int, m.Vocab)
	for i := range idx {
		idx[i] = i
	}
	row := m.Lambda[k]
	sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// TrainLDA fits LDA with batch variational EM (Hoffman et al.; the
// same E-step/M-step structure as MLlib's OnlineLDAOptimizer with batch
// fraction 1). Each outer iteration performs exactly one aggregation of
// the K×V sufficient statistics using the configured strategy.
func TrainLDA(docs *rdd.RDD[Document], cfg LDAConfig) (*LDAModel, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	k, v := cfg.K, cfg.Vocab

	// Deterministic pseudo-random lambda init around 1.0.
	lambda := make([][]float64, k)
	seed := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	for i := range lambda {
		row := make([]float64, v)
		for j := range row {
			seed = seed*6364136223846793005 + 1442695040888963407
			row[j] = 0.05 + 1.9*float64(seed>>40)/float64(1<<24)
		}
		lambda[i] = row
	}

	model := &LDAModel{K: k, Vocab: v, Lambda: lambda}
	// Aggregator layout: K*V sstats, then [K*V] loglik, [K*V+1] tokens.
	dim := k*v + 2

	tr, root, tctx := startTrainSpan(docs.Context(), "lda", cfg.Strategy, nil)
	defer func() { root.End() }()

	for iter := 0; iter < cfg.Iterations; iter++ {
		expElogBeta := expDirichletExpectation(lambda)
		flatBeta := flatten(expElogBeta, v)
		alpha, inner := cfg.Alpha, cfg.InnerIters

		it, ictx := startIteration(tr, root, tctx, iter+1)
		agg, err := AggregateF64Ctx(ictx, docs, dim, func(acc []float64, d Document) []float64 {
			docEStep(d, flatBeta, acc, k, v, alpha, inner)
			return acc
		}, cfg.Strategy, cfg.Depth, cfg.Parallelism)
		if err != nil {
			it.EndErr(err)
			root.SetAttr("error", err.Error())
			return nil, fmt.Errorf("mllib: LDA iteration %d: %w", iter, err)
		}
		it.End()

		// M-step: lambda = eta + sstats (sstats already include the
		// expElogBeta factor, Hoffman-style).
		for kk := 0; kk < k; kk++ {
			row := lambda[kk]
			base := kk * v
			for j := 0; j < v; j++ {
				row[j] = cfg.Eta + agg[base+j]
			}
		}
		tokens := agg[k*v+1]
		if tokens > 0 {
			model.Bounds = append(model.Bounds, agg[k*v]/tokens)
		} else {
			model.Bounds = append(model.Bounds, math.Inf(-1))
		}
	}
	return model, nil
}

// docEStep runs the per-document variational fixed point, accumulates
// expected counts into acc and returns the document's gamma (nil for
// an empty document).
func docEStep(d Document, flatBeta []float64, acc []float64, k, v int, alpha float64, innerIters int) []float64 {
	nWords := len(d.WordIDs)
	if nWords == 0 {
		return nil
	}
	total := d.TokenCount()

	gamma := make([]float64, k)
	expElogTheta := make([]float64, k)
	phinorm := make([]float64, nWords)
	for i := range gamma {
		gamma[i] = alpha + total/float64(k)
	}
	updateExpElogTheta(gamma, expElogTheta)

	for it := 0; it < innerIters; it++ {
		for wi, w := range d.WordIDs {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += expElogTheta[kk] * flatBeta[kk*v+int(w)]
			}
			phinorm[wi] = s + 1e-100
		}
		change := 0.0
		for kk := 0; kk < k; kk++ {
			var s float64
			for wi, w := range d.WordIDs {
				s += d.Counts[wi] * flatBeta[kk*v+int(w)] / phinorm[wi]
			}
			ng := alpha + expElogTheta[kk]*s
			change += math.Abs(ng - gamma[kk])
			gamma[kk] = ng
		}
		updateExpElogTheta(gamma, expElogTheta)
		if change/float64(k) < 1e-4 {
			break
		}
	}

	// Final responsibilities → sufficient statistics and bound proxy.
	for wi, w := range d.WordIDs {
		var s float64
		for kk := 0; kk < k; kk++ {
			s += expElogTheta[kk] * flatBeta[kk*v+int(w)]
		}
		s += 1e-100
		for kk := 0; kk < k; kk++ {
			acc[kk*v+int(w)] += d.Counts[wi] * expElogTheta[kk] * flatBeta[kk*v+int(w)] / s
		}
		acc[k*v] += d.Counts[wi] * math.Log(s)
	}
	acc[k*v+1] += total
	return gamma
}

// updateExpElogTheta fills out = exp(E[log theta]) for Dirichlet(gamma).
func updateExpElogTheta(gamma, out []float64) {
	var sum float64
	for _, g := range gamma {
		sum += g
	}
	dgSum := digamma(sum)
	for i, g := range gamma {
		out[i] = math.Exp(digamma(g) - dgSum)
	}
}

// expDirichletExpectation returns exp(E[log beta]) row-wise.
func expDirichletExpectation(lambda [][]float64) [][]float64 {
	out := make([][]float64, len(lambda))
	for k, row := range lambda {
		var sum float64
		for _, x := range row {
			sum += x
		}
		dgSum := digamma(sum)
		o := make([]float64, len(row))
		for i, x := range row {
			o[i] = math.Exp(digamma(x) - dgSum)
		}
		out[k] = o
	}
	return out
}

func flatten(m [][]float64, v int) []float64 {
	out := make([]float64, len(m)*v)
	for k, row := range m {
		copy(out[k*v:], row)
	}
	return out
}

// digamma computes ψ(x) for x > 0 via the recurrence ψ(x) = ψ(x+1) − 1/x
// and the asymptotic series for large arguments.
func digamma(x float64) float64 {
	var r float64
	for x < 6 {
		r -= 1 / x
		x++
	}
	f := 1 / (x * x)
	return r + math.Log(x) - 0.5/x -
		f*(1.0/12-f*(1.0/120-f*(1.0/252-f*(1.0/240-f*(1.0/132)))))
}
