// Package mllib reimplements the slice of Spark MLlib the paper
// evaluates: gradient-descent-trained linear models (logistic
// regression and linear SVM) and a variational-EM LDA topic model, each
// parameterized by the aggregation strategy — Spark's tree aggregation,
// tree aggregation with in-memory merge, or Sparker's split aggregation
// — so the paper's end-to-end comparisons (Figures 1, 2, 17, 18) can be
// run over identical algorithm code.
package mllib

import (
	"fmt"

	"sparker/internal/linalg"
	"sparker/internal/serde"
)

// LabeledPoint is one classification sample.
type LabeledPoint struct {
	// Label is 0 or 1 for the binary classifiers.
	Label float64
	// Features is the sparse feature vector.
	Features linalg.SparseVector
}

// MarshalBinaryTo implements serde.Marshaler.
func (p LabeledPoint) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.AppendFloat64(dst, p.Label)
	return p.Features.MarshalBinaryTo(dst)
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (p *LabeledPoint) UnmarshalBinaryFrom(src []byte) (int, error) {
	if len(src) < 8 {
		return 0, fmt.Errorf("mllib: short LabeledPoint")
	}
	p.Label = serde.Float64At(src, 0)
	n, err := p.Features.UnmarshalBinaryFrom(src[8:])
	return n + 8, err
}

// Document is one bag-of-words document for LDA.
type Document struct {
	// WordIDs are the distinct vocabulary ids present (strictly
	// increasing); Counts their occurrence counts.
	WordIDs []int32
	Counts  []float64
}

// TokenCount returns the total token count.
func (d Document) TokenCount() float64 {
	var s float64
	for _, c := range d.Counts {
		s += c
	}
	return s
}

// Validate checks structural invariants.
func (d Document) Validate(vocab int) error {
	if len(d.WordIDs) != len(d.Counts) {
		return fmt.Errorf("mllib: %d word ids but %d counts", len(d.WordIDs), len(d.Counts))
	}
	prev := int32(-1)
	for i, w := range d.WordIDs {
		if w <= prev {
			return fmt.Errorf("mllib: word ids not strictly increasing at %d", w)
		}
		if int(w) >= vocab {
			return fmt.Errorf("mllib: word id %d out of vocab %d", w, vocab)
		}
		if d.Counts[i] <= 0 {
			return fmt.Errorf("mllib: non-positive count for word %d", w)
		}
		prev = w
	}
	return nil
}

// MarshalBinaryTo implements serde.Marshaler.
func (d Document) MarshalBinaryTo(dst []byte) []byte {
	dst = serde.AppendInt(dst, len(d.WordIDs))
	for _, w := range d.WordIDs {
		dst = serde.AppendInt(dst, int(w))
	}
	for _, c := range d.Counts {
		dst = serde.AppendFloat64(dst, c)
	}
	return dst
}

// UnmarshalBinaryFrom implements serde.Unmarshaler.
func (d *Document) UnmarshalBinaryFrom(src []byte) (int, error) {
	if len(src) < 8 {
		return 0, fmt.Errorf("mllib: short Document")
	}
	n := serde.IntAt(src, 0)
	need := 8 + 16*n
	if n < 0 || len(src) < need {
		return 0, fmt.Errorf("mllib: truncated Document (n=%d)", n)
	}
	d.WordIDs = make([]int32, n)
	d.Counts = make([]float64, n)
	off := 8
	for i := 0; i < n; i++ {
		d.WordIDs[i] = int32(serde.IntAt(src, off))
		off += 8
	}
	for i := 0; i < n; i++ {
		d.Counts[i] = serde.Float64At(src, off)
		off += 8
	}
	return off, nil
}

func init() {
	serde.RegisterSelf(LabeledPoint{}, func() serde.Unmarshaler { return new(LabeledPoint) })
	serde.RegisterSelf(Document{}, func() serde.Unmarshaler { return new(Document) })
}
