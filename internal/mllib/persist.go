package mllib

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Model persistence: a small versioned binary format so trained models
// survive process restarts — the operational piece MLlib provides via
// model.save/load.

const (
	modelMagic   = 0x53504b4d // "SPKM"
	modelVersion = 1
)

type modelKind uint8

const (
	kindLinear modelKind = iota + 1
	kindRegression
	kindLDA
	kindKMeans
)

func writeHeader(w io.Writer, kind modelKind) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], modelMagic)
	hdr[4] = modelVersion
	hdr[5] = byte(kind)
	_, err := w.Write(hdr[:])
	return err
}

func readHeader(r io.Reader) (modelKind, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[:]) != modelMagic {
		return 0, fmt.Errorf("mllib: not a sparker model file")
	}
	if hdr[4] != modelVersion {
		return 0, fmt.Errorf("mllib: unsupported model version %d", hdr[4])
	}
	return modelKind(hdr[5]), nil
}

func writeF64s(w io.Writer, vs []float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(vs)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readF64s(r io.Reader) ([]float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(b[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("mllib: implausible vector length %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint64(b[:])
	if n > 1<<20 {
		return "", fmt.Errorf("mllib: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save writes the linear model.
func (m *LinearModel) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindLinear); err != nil {
		return err
	}
	if err := writeString(bw, m.kind); err != nil {
		return err
	}
	if err := writeF64s(bw, []float64{m.Threshold}); err != nil {
		return err
	}
	if err := writeF64s(bw, m.Weights); err != nil {
		return err
	}
	if err := writeF64s(bw, m.Losses); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadLinearModel reads a model written by LinearModel.Save.
//
// Deprecated: use LoadModel, which dispatches on the file's kind byte
// and returns the unified Model interface.
func LoadLinearModel(r io.Reader) (*LinearModel, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != kindLinear {
		return nil, fmt.Errorf("mllib: file holds model kind %d, not a linear classifier", kind)
	}
	return loadLinearPayload(br)
}

// loadLinearPayload reads a linear classifier body (header consumed).
func loadLinearPayload(br *bufio.Reader) (*LinearModel, error) {
	m := &LinearModel{}
	var err error
	if m.kind, err = readString(br); err != nil {
		return nil, err
	}
	th, err := readF64s(br)
	if err != nil || len(th) != 1 {
		return nil, fmt.Errorf("mllib: corrupt threshold: %v", err)
	}
	m.Threshold = th[0]
	if m.Weights, err = readF64s(br); err != nil {
		return nil, err
	}
	if m.Losses, err = readF64s(br); err != nil {
		return nil, err
	}
	return m, nil
}

// Save writes the regression model.
func (m *RegressionModel) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindRegression); err != nil {
		return err
	}
	if err := writeF64s(bw, m.Weights); err != nil {
		return err
	}
	if err := writeF64s(bw, m.Losses); err != nil {
		return err
	}
	return bw.Flush()
}

// loadRegressionPayload reads a regression body (header consumed).
func loadRegressionPayload(br *bufio.Reader) (*RegressionModel, error) {
	m := &RegressionModel{}
	var err error
	if m.Weights, err = readF64s(br); err != nil {
		return nil, err
	}
	if m.Losses, err = readF64s(br); err != nil {
		return nil, err
	}
	return m, nil
}

// Save writes the kmeans model.
func (m *KMeansModel) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindKMeans); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(m.Centers)))
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	for _, c := range m.Centers {
		if err := writeF64s(bw, c); err != nil {
			return err
		}
	}
	if err := writeF64s(bw, m.CostHistory); err != nil {
		return err
	}
	return bw.Flush()
}

// loadKMeansPayload reads a kmeans body (header consumed).
func loadKMeansPayload(br *bufio.Reader) (*KMeansModel, error) {
	var b [8]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, err
	}
	k := binary.LittleEndian.Uint64(b[:])
	if k == 0 || k > 1<<20 {
		return nil, fmt.Errorf("mllib: implausible center count %d", k)
	}
	m := &KMeansModel{Centers: make([][]float64, k)}
	var err error
	for i := range m.Centers {
		if m.Centers[i], err = readF64s(br); err != nil {
			return nil, err
		}
		if len(m.Centers[i]) != len(m.Centers[0]) {
			return nil, fmt.Errorf("mllib: ragged centers (%d vs %d)", len(m.Centers[i]), len(m.Centers[0]))
		}
	}
	if m.CostHistory, err = readF64s(br); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveModel writes any unified-interface model in the versioned binary
// format; LoadModel reads it back. (LDAModel predates the interface
// and keeps its own Save/LoadLDAModel pair.)
func SaveModel(w io.Writer, m Model) error {
	switch t := m.(type) {
	case *LinearModel:
		return t.Save(w)
	case *RegressionModel:
		return t.Save(w)
	case *KMeansModel:
		return t.Save(w)
	default:
		return fmt.Errorf("mllib: SaveModel: unsupported model type %T", m)
	}
}

// LoadModel reads any model written by SaveModel (or the per-type Save
// methods), dispatching on the header's kind byte.
func LoadModel(r io.Reader) (Model, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindLinear:
		return loadLinearPayload(br)
	case kindRegression:
		return loadRegressionPayload(br)
	case kindKMeans:
		return loadKMeansPayload(br)
	case kindLDA:
		return nil, fmt.Errorf("mllib: LDA models do not implement the Model interface; use LoadLDAModel")
	default:
		return nil, fmt.Errorf("mllib: unknown model kind %d", kind)
	}
}

// SaveModelFile writes m to path (the sparker-train -save-model sink).
func SaveModelFile(path string, m Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveModel(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model from path (the sparker-serve -model
// source).
func LoadModelFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("mllib: loading %s: %w", path, err)
	}
	return m, nil
}

// Save writes the LDA model.
func (m *LDAModel) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, kindLDA); err != nil {
		return err
	}
	var dims [16]byte
	binary.LittleEndian.PutUint64(dims[:], uint64(m.K))
	binary.LittleEndian.PutUint64(dims[8:], uint64(m.Vocab))
	if _, err := bw.Write(dims[:]); err != nil {
		return err
	}
	for _, row := range m.Lambda {
		if err := writeF64s(bw, row); err != nil {
			return err
		}
	}
	if err := writeF64s(bw, m.Bounds); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadLDAModel reads a model written by LDAModel.Save.
func LoadLDAModel(r io.Reader) (*LDAModel, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != kindLDA {
		return nil, fmt.Errorf("mllib: file holds model kind %d, not an LDA model", kind)
	}
	var dims [16]byte
	if _, err := io.ReadFull(br, dims[:]); err != nil {
		return nil, err
	}
	m := &LDAModel{
		K:     int(binary.LittleEndian.Uint64(dims[:])),
		Vocab: int(binary.LittleEndian.Uint64(dims[8:])),
	}
	if m.K <= 0 || m.Vocab <= 0 || m.K > 1<<20 {
		return nil, fmt.Errorf("mllib: corrupt LDA dimensions %d×%d", m.K, m.Vocab)
	}
	m.Lambda = make([][]float64, m.K)
	for k := range m.Lambda {
		row, err := readF64s(br)
		if err != nil {
			return nil, err
		}
		if len(row) != m.Vocab {
			return nil, fmt.Errorf("mllib: lambda row %d has %d entries, want %d", k, len(row), m.Vocab)
		}
		m.Lambda[k] = row
	}
	if m.Bounds, err = readF64s(br); err != nil {
		return nil, err
	}
	return m, nil
}
