package mllib

import (
	"fmt"
	"math"
	"testing"

	"sparker/internal/rdd"
)

// corpusRDD distributes a deterministic synthetic two-band corpus:
// documents are drawn from one of `topics` vocabulary bands, so a
// correct LDA should concentrate each learned topic on a band.
func corpusRDD(ctx *rdd.Context, docs, vocab, topics, parts int) *rdd.RDD[Document] {
	return rdd.Generate(ctx, parts, func(part int) ([]Document, error) {
		lo := part * docs / parts
		hi := (part + 1) * docs / parts
		out := make([]Document, 0, hi-lo)
		band := vocab / topics
		for i := lo; i < hi; i++ {
			k := i % topics
			// 6 distinct words from the doc's band, lattice-spread.
			ids := make([]int32, 0, 6)
			counts := make([]float64, 0, 6)
			for j := 0; j < 6; j++ {
				w := int32(k*band + (i*7+j*13)%band)
				// Keep strictly increasing by sorting below.
				ids = append(ids, w)
				counts = append(counts, float64(1+j%3))
			}
			d := dedupSorted(ids, counts)
			out = append(out, d)
		}
		return out, nil
	}).Cache()
}

func dedupSorted(ids []int32, counts []float64) Document {
	m := map[int32]float64{}
	for i, w := range ids {
		m[w] += counts[i]
	}
	uniq := make([]int32, 0, len(m))
	for w := range m {
		uniq = append(uniq, w)
	}
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	cs := make([]float64, len(uniq))
	for i, w := range uniq {
		cs[i] = m[w]
	}
	return Document{WordIDs: uniq, Counts: cs}
}

func TestLDAConfigValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	docs := corpusRDD(ctx, 10, 20, 2, 2)
	if _, err := TrainLDA(docs, LDAConfig{K: 0, Vocab: 20}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := TrainLDA(docs, LDAConfig{K: 2, Vocab: 0}); err == nil {
		t.Fatal("Vocab=0 should fail")
	}
}

func TestLDATrainsAllStrategies(t *testing.T) {
	// K is over-provisioned (2× the generating topic count), the
	// standard guard against variational EM's symmetric local optima.
	const docs, vocab, topics, k = 120, 60, 3, 6
	for _, s := range []Strategy{StrategyTree, StrategyTreeIMM, StrategySplit} {
		t.Run(s.String(), func(t *testing.T) {
			ctx := testContext(t, 3, 2)
			corpus := corpusRDD(ctx, docs, vocab, topics, 6)
			m, err := TrainLDA(corpus, LDAConfig{
				K: k, Vocab: vocab, Iterations: 12, Strategy: s, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Invariant: topic rows normalize to 1.
			for k, row := range m.TopicDistributions() {
				var sum float64
				for _, p := range row {
					if p < 0 {
						t.Fatalf("topic %d has negative probability", k)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("topic %d sums to %v", k, sum)
				}
			}
			// The bound proxy should improve from first to last iteration.
			first, last := m.Bounds[0], m.Bounds[len(m.Bounds)-1]
			if !(last > first) {
				t.Fatalf("bound did not improve: %v -> %v", first, last)
			}
			// Band recovery: every generating vocabulary band must be
			// captured by at least one learned topic with ≥70% of its
			// probability mass inside that band.
			band := vocab / topics
			dists := m.TopicDistributions()
			for b := 0; b < topics; b++ {
				best := 0.0
				for kk := 0; kk < k; kk++ {
					var mass float64
					for w := b * band; w < (b+1)*band; w++ {
						mass += dists[kk][w]
					}
					if mass > best {
						best = mass
					}
				}
				if best < 0.7 {
					t.Fatalf("band %d best topic purity %.2f < 0.7", b, best)
				}
			}
		})
	}
}

func TestLDAStrategiesAgree(t *testing.T) {
	const docs, vocab, topics = 60, 30, 2
	ctx := testContext(t, 3, 2)
	corpus := corpusRDD(ctx, docs, vocab, topics, 4)
	run := func(s Strategy) *LDAModel {
		m, err := TrainLDA(corpus, LDAConfig{K: topics, Vocab: vocab, Iterations: 4, Strategy: s, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	tree := run(StrategyTree)
	split := run(StrategySplit)
	// Same init + same data + same update order (floating addition
	// order differs in reductions, so allow small tolerance).
	for k := 0; k < topics; k++ {
		for v := 0; v < vocab; v++ {
			a, b := tree.Lambda[k][v], split.Lambda[k][v]
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				t.Fatalf("lambda[%d][%d]: tree=%v split=%v", k, v, a, b)
			}
		}
	}
}

func TestLDASufficientStatsMassConservation(t *testing.T) {
	// The aggregated expected counts must sum to the corpus token count
	// (each token's responsibilities sum to 1).
	const docs, vocab, topics = 40, 24, 2
	ctx := testContext(t, 2, 2)
	corpus := corpusRDD(ctx, docs, vocab, topics, 4)

	collected, err := rdd.Collect(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var tokens float64
	for _, d := range collected {
		tokens += d.TokenCount()
	}

	m, err := TrainLDA(corpus, LDAConfig{K: topics, Vocab: vocab, Iterations: 1, Strategy: StrategySplit, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// After 1 iteration lambda = eta + sstats, so sum(lambda) - K*V*eta
	// = sum(sstats) ≈ tokens.
	eta := 1.0 / float64(topics)
	var mass float64
	for _, row := range m.Lambda {
		for _, x := range row {
			mass += x
		}
	}
	mass -= eta * float64(topics*vocab)
	if math.Abs(mass-tokens) > 1e-6*tokens {
		t.Fatalf("expected-count mass %v != token count %v", mass, tokens)
	}
}

func TestLDATopTermsShape(t *testing.T) {
	m := &LDAModel{K: 1, Vocab: 4, Lambda: [][]float64{{0.1, 5, 2, 0.4}}}
	top := m.TopTerms(0, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopTerms = %v", top)
	}
	if got := m.TopTerms(0, 99); len(got) != 4 {
		t.Fatalf("TopTerms clamp failed: %v", got)
	}
}

func TestLDAEmptyDocsHandled(t *testing.T) {
	ctx := testContext(t, 2, 1)
	docs := rdd.Generate(ctx, 2, func(part int) ([]Document, error) {
		if part == 0 {
			return []Document{{}}, nil // empty document
		}
		return []Document{{WordIDs: []int32{0, 1}, Counts: []float64{1, 2}}}, nil
	})
	m, err := TrainLDA(docs, LDAConfig{K: 2, Vocab: 4, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Lambda {
		for _, x := range row {
			if math.IsNaN(x) || x <= 0 {
				t.Fatalf("lambda corrupted by empty doc: %v", x)
			}
		}
	}
}

func BenchmarkDocEStep(b *testing.B) {
	const k, v = 20, 500
	lambda := make([][]float64, k)
	for i := range lambda {
		lambda[i] = make([]float64, v)
		for j := range lambda[i] {
			lambda[i][j] = 1 + float64((i*31+j*17)%10)/10
		}
	}
	beta := flatten(expDirichletExpectation(lambda), v)
	doc := Document{}
	for w := 0; w < 40; w++ {
		doc.WordIDs = append(doc.WordIDs, int32(w*12))
		doc.Counts = append(doc.Counts, float64(1+w%3))
	}
	acc := make([]float64, k*v+2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docEStep(doc, beta, acc, k, v, 0.05, 20)
	}
	_ = fmt.Sprint(acc[0])
}
