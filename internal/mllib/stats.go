package mllib

import (
	"fmt"
	"math"

	"sparker/internal/rdd"
)

// ColumnSummary holds per-feature statistics of a dataset — MLlib's
// MultivariateStatisticalSummary, which MLlib itself computes with one
// treeAggregate over the data (another instance of the aggregation the
// paper profiles: the aggregator is 3×features + 1 doubles).
type ColumnSummary struct {
	// Count is the number of samples.
	Count int64
	// Mean, Variance and NumNonzeros are per-feature.
	Mean, Variance []float64
	NumNonzeros    []float64
}

// ColumnStats computes per-feature mean, (population) variance and
// non-zero counts with a single distributed aggregation under the
// chosen strategy.
func ColumnStats(data *rdd.RDD[LabeledPoint], numFeatures int, strategy Strategy, parallelism int) (*ColumnSummary, error) {
	if numFeatures <= 0 {
		return nil, fmt.Errorf("mllib: numFeatures must be positive")
	}
	// Aggregator layout: [0,d) sum, [d,2d) sum of squares, [2d,3d) nnz,
	// [3d] count.
	d := numFeatures
	agg, err := AggregateF64(data, 3*d+1, func(acc []float64, p LabeledPoint) []float64 {
		for i, ix := range p.Features.Indices {
			v := p.Features.Values[i]
			acc[ix] += v
			acc[d+int(ix)] += v * v
			if v != 0 {
				acc[2*d+int(ix)]++
			}
		}
		acc[3*d]++
		return acc
	}, strategy, 2, parallelism)
	if err != nil {
		return nil, err
	}
	n := agg[3*d]
	if n == 0 {
		return nil, fmt.Errorf("mllib: empty dataset")
	}
	out := &ColumnSummary{
		Count:       int64(n),
		Mean:        make([]float64, d),
		Variance:    make([]float64, d),
		NumNonzeros: make([]float64, d),
	}
	for j := 0; j < d; j++ {
		mean := agg[j] / n
		out.Mean[j] = mean
		v := agg[d+j]/n - mean*mean
		if v < 0 {
			v = 0 // float cancellation guard
		}
		out.Variance[j] = v
		out.NumNonzeros[j] = agg[2*d+j]
	}
	return out, nil
}

// StandardScaler centers and scales features using a ColumnSummary —
// the preprocessing step MLlib pipelines put before linear models.
type StandardScaler struct {
	mean, scale []float64
}

// NewStandardScaler builds a scaler from a summary. Zero-variance
// features are left unscaled.
func NewStandardScaler(s *ColumnSummary) *StandardScaler {
	scale := make([]float64, len(s.Variance))
	for i, v := range s.Variance {
		if v > 0 {
			scale[i] = 1 / math.Sqrt(v)
		} else {
			scale[i] = 1
		}
	}
	return &StandardScaler{mean: append([]float64(nil), s.Mean...), scale: scale}
}

// TransformDense standardizes a dense vector in place and returns it.
// (Sparse inputs densify under centering, so the dense form is the
// natural output — same trade MLlib documents.)
func (sc *StandardScaler) TransformDense(x []float64) []float64 {
	for i := range x {
		x[i] = (x[i] - sc.mean[i]) * sc.scale[i]
	}
	return x
}
