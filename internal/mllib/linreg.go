package mllib

import (
	"fmt"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

// RegressionModel is a trained linear regressor.
type RegressionModel struct {
	// Weights is the learned weight vector.
	Weights []float64
	// Losses is the per-iteration mean squared loss history.
	Losses []float64
}

// Predict returns wᵀx.
func (m *RegressionModel) Predict(x linalg.SparseVector) float64 {
	return linalg.Dot(m.Weights, x)
}

// PredictBatch fills out[i] with the response for xs[i]; len(out) must
// equal len(xs). Part of the unified Model interface.
func (m *RegressionModel) PredictBatch(xs []linalg.SparseVector, out []float64) {
	for i, x := range xs {
		out[i] = linalg.Dot(m.Weights, x)
	}
}

// Kind identifies the model family for the unified Model interface.
func (m *RegressionModel) Kind() string { return "linear-regression" }

// NumFeatures returns the weight vector's dimensionality.
func (m *RegressionModel) NumFeatures() int { return len(m.Weights) }

// MSE evaluates mean squared error over data.
func (m *RegressionModel) MSE(data []LabeledPoint) float64 {
	if len(data) == 0 {
		return 0
	}
	var s float64
	for _, p := range data {
		d := m.Predict(p.Features) - p.Label
		s += d * d
	}
	return s / float64(len(data))
}

// LinearRegressionConfig configures TrainLinearRegression.
type LinearRegressionConfig struct {
	NumFeatures int
	GD          GDConfig
}

// TrainLinearRegression fits least-squares regression with mini-batch
// gradient descent — MLlib's LinearRegressionWithSGD, completing the
// gradient family beyond the paper's three workloads.
func TrainLinearRegression(data *rdd.RDD[LabeledPoint], cfg LinearRegressionConfig) (*RegressionModel, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("mllib: NumFeatures must be positive")
	}
	initial := make([]float64, cfg.NumFeatures)
	var up Updater = SimpleUpdater{}
	if cfg.GD.RegParam > 0 {
		up = SquaredL2Updater{}
	}
	w, losses, err := RunGradientDescent(data, LeastSquaresGradient{}, up, initial, cfg.GD)
	if err != nil {
		return nil, err
	}
	return &RegressionModel{Weights: w, Losses: losses}, nil
}
