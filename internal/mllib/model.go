package mllib

import (
	"sparker/internal/core"
	"sparker/internal/linalg"
)

// Model is the unified prediction interface every trained mllib model
// implements. Serving layers (sparker-serve's prediction endpoint, the
// batch scorer) dispatch through it exclusively, so adding a model
// family to the repo makes it servable by implementing these four
// methods — no per-type switches in the serving path.
//
// Predictions are float64 across the board: classifiers return the 0/1
// class, regressors the response, clusterers the cluster id as a
// float64 (use KMeansModel.NearestCenter for the int form).
type Model interface {
	// Kind identifies the model family ("logistic-regression", "svm",
	// "linear-regression", "kmeans").
	Kind() string
	// NumFeatures is the input dimensionality the model expects.
	NumFeatures() int
	// Predict scores one point.
	Predict(x linalg.SparseVector) float64
	// PredictBatch scores xs into out; len(out) must equal len(xs).
	// Implementations are pure per-element, so callers may shard a
	// batch across cores (linalg.ParallelFor over aligned subslices).
	PredictBatch(xs []linalg.SparseVector, out []float64)
}

// Interface conformance of every trained model type.
var (
	_ Model = (*LinearModel)(nil)
	_ Model = (*RegressionModel)(nil)
	_ Model = (*KMeansModel)(nil)
)

// tenantOptions converts a config Tenant field into aggregation
// options (empty name: none).
func tenantOptions(tenant string) []core.AggOption {
	if tenant == "" {
		return nil
	}
	return []core.AggOption{core.WithTenant(tenant)}
}
