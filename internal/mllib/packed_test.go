package mllib

// Engine-level property tests for the packed compute plane: training
// with Packed on must produce bit-for-bit the weights, losses and
// centers of the per-point path across partition counts, core counts,
// strategies and gradient families — and must degrade through the same
// ring→tree fallback under chaos.

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
	"sparker/internal/transport"
)

// sparseSet builds a deterministic labeled dataset with power-law-ish
// row sparsity over dim columns, including empty and single-entry rows
// — the degenerate shapes the kernels special-case.
func sparseSet(ctx *rdd.Context, n, dim, parts int) *rdd.RDD[LabeledPoint] {
	return rdd.Generate(ctx, parts, func(part int) ([]LabeledPoint, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]LabeledPoint, 0, hi-lo)
		for i := lo; i < hi; i++ {
			// nnz cycles 0,1,2,3,5,8,13 — empty and tiny rows included.
			nnz := []int{0, 1, 2, 3, 5, 8, 13}[i%7]
			if nnz > dim {
				nnz = dim
			}
			idx := make([]int32, 0, nnz)
			vals := make([]float64, 0, nnz)
			margin := 0.0
			for j, last := 0, -1; j < nnz; j++ {
				// Leave room for the nnz-j-1 entries still to come:
				// col may reach at most dim-1-(nnz-j-1).
				span := dim - nnz + j - last
				step := 1 + (i*31+j*17)%span
				col := last + step
				last = col
				v := (float64((i*13+j*7)%101)/101 - 0.5) * float64(1+j%3)
				idx = append(idx, int32(col))
				vals = append(vals, v)
				if col%2 == 0 {
					margin += v
				} else {
					margin -= v
				}
			}
			label := 0.0
			if margin > 0 {
				label = 1
			}
			sv, err := linalg.NewSparse(dim, idx, vals)
			if err != nil {
				return nil, err
			}
			out = append(out, LabeledPoint{Label: label, Features: sv})
		}
		return out, nil
	}).Cache()
}

func bitsEqualSlices(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v (%#x) != %v (%#x)", name, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestPackedGDBitwiseMatchesPerPoint is the gating property test for
// GDConfig.Packed: identical configs with the packed plane on and off
// must train bit-identical weights and loss histories, for every fused
// gradient family, across partition and core counts and both
// deterministic-merge strategies.
func TestPackedGDBitwiseMatchesPerPoint(t *testing.T) {
	grads := []struct {
		name string
		g    Gradient
	}{
		{"logistic", LogisticGradient{}},
		{"leastsquares", LeastSquaresGradient{}},
		{"hinge", HingeGradient{}},
	}
	layouts := []struct {
		execs, cores, parts int
		strategy            Strategy
	}{
		{1, 1, 1, StrategyTree},
		{2, 2, 4, StrategyTree},
		{3, 8, 6, StrategyTree},
		{3, 2, 6, StrategySplit},
	}
	const n, dim = 420, 48
	for _, gc := range grads {
		for _, lay := range layouts {
			t.Run(fmt.Sprintf("%s/e%dc%dp%d-%s", gc.name, lay.execs, lay.cores, lay.parts, lay.strategy), func(t *testing.T) {
				ctx := testContext(t, lay.execs, lay.cores)
				train := sparseSet(ctx, n, dim, lay.parts)
				run := func(mode PackedMode) ([]float64, []float64) {
					w, losses, err := RunGradientDescent(train, gc.g, SimpleUpdater{}, make([]float64, dim), GDConfig{
						Iterations: 4, StepSize: 1, Strategy: lay.strategy, Packed: mode,
					})
					if err != nil {
						t.Fatal(err)
					}
					return w, losses
				}
				wOff, lOff := run(PackedOff)
				wOn, lOn := run(PackedOn)
				bitsEqualSlices(t, "weights", wOn, wOff)
				bitsEqualSlices(t, "losses", lOn, lOff)
			})
		}
	}
}

// TestPackedMinibatchBitwise pins the sampling parity: in-kernel
// index sampling must select exactly the rows sampleRDD's fresh-slice
// path would, so minibatch runs stay bit-identical too.
func TestPackedMinibatchBitwise(t *testing.T) {
	ctx := testContext(t, 2, 2)
	const n, dim = 400, 32
	train := sparseSet(ctx, n, dim, 4)
	for _, frac := range []float64{0.05, 0.3, 0.9} {
		run := func(mode PackedMode) ([]float64, []float64) {
			w, losses, err := RunGradientDescent(train, LogisticGradient{}, SimpleUpdater{}, make([]float64, dim), GDConfig{
				Iterations: 5, StepSize: 1, MiniBatchFraction: frac, Seed: 42,
				Strategy: StrategyTree, Packed: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			return w, losses
		}
		wOff, lOff := run(PackedOff)
		wOn, lOn := run(PackedOn)
		bitsEqualSlices(t, fmt.Sprintf("weights@%v", frac), wOn, wOff)
		bitsEqualSlices(t, fmt.Sprintf("losses@%v", frac), lOn, lOff)
	}
}

// TestPackedLBFGSBitwise gates the L-BFGS cost path: every line-search
// probe goes through the packed kernel, and the optimizer trajectory
// must not move by a single bit.
func TestPackedLBFGSBitwise(t *testing.T) {
	ctx := testContext(t, 3, 2)
	const n, dim = 300, 24
	train := sparseSet(ctx, n, dim, 6)
	run := func(mode PackedMode) ([]float64, []float64) {
		w, losses, err := RunLBFGS(train, LogisticGradient{}, make([]float64, dim), LBFGSConfig{
			Iterations: 6, Strategy: StrategyTree, RegParam: 0.01, Packed: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, losses
	}
	wOff, lOff := run(PackedOff)
	wOn, lOn := run(PackedOn)
	bitsEqualSlices(t, "weights", wOn, wOff)
	bitsEqualSlices(t, "losses", lOn, lOff)
}

// TestPackedKMeansBitwise gates the clustering path: packed Lloyd
// iterations (precomputed center norms, fused nearest-center kernel)
// must reproduce the per-point centers and cost history exactly.
func TestPackedKMeansBitwise(t *testing.T) {
	for _, lay := range []struct{ execs, cores, parts int }{{1, 1, 1}, {3, 2, 6}} {
		t.Run(fmt.Sprintf("e%dc%dp%d", lay.execs, lay.cores, lay.parts), func(t *testing.T) {
			ctx := testContext(t, lay.execs, lay.cores)
			const n, dim, k = 240, 6, 3
			pts := blobRDD(ctx, n, dim, k, lay.parts)
			run := func(mode PackedMode) *KMeansModel {
				m, err := TrainKMeans(pts, KMeansConfig{
					K: k, NumFeatures: dim, Iterations: 8, Strategy: StrategyTree, Packed: mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			off := run(PackedOff)
			on := run(PackedOn)
			bitsEqualSlices(t, "cost", on.CostHistory, off.CostHistory)
			for c := range off.Centers {
				bitsEqualSlices(t, fmt.Sprintf("center%d", c), on.Centers[c], off.Centers[c])
			}
		})
	}
}

// customGradient has no fused kernel — PackedAuto must fall back to
// the per-point fold, PackedOn must fail fast.
type customGradient struct{}

func (customGradient) Compute(x linalg.SparseVector, label float64, w, cum []float64) float64 {
	diff := linalg.Dot(w, x) - label
	linalg.Axpy(diff, x, cum)
	return diff * diff
}

func TestPackedOnRequiresKernel(t *testing.T) {
	ctx := testContext(t, 2, 1)
	train := sparseSet(ctx, 100, 16, 2)
	_, _, err := RunGradientDescent(train, customGradient{}, SimpleUpdater{}, make([]float64, 16), GDConfig{
		Iterations: 1, Strategy: StrategyTree, Packed: PackedOn,
	})
	if err == nil || !strings.Contains(err.Error(), "no fused kernel") {
		t.Fatalf("PackedOn with custom gradient: err = %v, want fused-kernel error", err)
	}
	// PackedAuto silently uses the per-point path.
	if _, _, err := RunGradientDescent(train, customGradient{}, SimpleUpdater{}, make([]float64, 16), GDConfig{
		Iterations: 1, Strategy: StrategyTree,
	}); err != nil {
		t.Fatalf("PackedAuto with custom gradient should fall back: %v", err)
	}
}

// TestPackedBlocksPersistAcrossRuns checks the durable pack cache: the
// first run writes one csr/ block per partition into the executors'
// stores; a second run over the same data reuses them (no growth) and
// trains identical weights.
func TestPackedBlocksPersistAcrossRuns(t *testing.T) {
	ctx := testContext(t, 2, 2)
	const n, dim, parts = 200, 16, 4
	train := sparseSet(ctx, n, dim, parts)
	countCSRBlocks := func() int {
		total := 0
		res, err := ctx.RunOnAllExecutors(func(ec *rdd.ExecContext, task, attempt int) ([]byte, error) {
			c := 0
			for _, b := range ec.Store.List() {
				if strings.HasPrefix(b.ID, "csr/") {
					c++
				}
			}
			return []byte{byte(c)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			total += int(r[0])
		}
		return total
	}
	run := func() []float64 {
		w, _, err := RunGradientDescent(train, LogisticGradient{}, SimpleUpdater{}, make([]float64, dim), GDConfig{
			Iterations: 3, Strategy: StrategyTree, Packed: PackedOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1 := run()
	if got := countCSRBlocks(); got != parts {
		t.Fatalf("after run 1: %d csr blocks, want %d", got, parts)
	}
	// Packed passes must land in the compute instruments the debug
	// plane serves.
	if n := ctx.MergedMetrics().Histogram(metrics.HistComputeMapNS).Count(); n == 0 {
		t.Fatal("packed training observed no compute.map.ns samples")
	}
	w2 := run()
	if got := countCSRBlocks(); got != parts {
		t.Fatalf("after run 2: %d csr blocks, want %d (reuse, not repack)", got, parts)
	}
	bitsEqualSlices(t, "weights", w2, w1)
}

// TestChaosPackedTrainingRingFallback runs packed training over a
// transport that kills one executor's ring links: every iteration's
// split aggregation must degrade to the IMM tree fallback and the run
// must still finish — with exactly the weights the per-point path
// trains under the same faults, because the packed plane changes only
// the map-side fold, never the reduction.
func TestChaosPackedTrainingRingFallback(t *testing.T) {
	const n, dim, iters = 300, 24, 3
	run := func(name string, mode PackedMode) ([]float64, *rdd.Context) {
		victim := transport.Addr(fmt.Sprintf("comm/%s/ring/%d", name, 1))
		net := transport.NewFaulty(transport.NewMem(), 7, &transport.FaultRule{
			Match:     func(a transport.Addr) bool { return a == victim },
			Kind:      transport.FaultKill,
			AfterMsgs: 1,
		})
		ctx, err := rdd.NewContext(rdd.Config{
			Name:             name,
			NumExecutors:     3,
			CoresPerExecutor: 2,
			RingParallelism:  2,
			Network:          net,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctx.Close() })
		train := sparseSet(ctx, n, dim, 6)
		w, _, err := RunGradientDescent(train, LogisticGradient{}, SimpleUpdater{}, make([]float64, dim), GDConfig{
			Iterations: iters, StepSize: 1, Strategy: StrategySplit,
			StepDeadline: 500 * time.Millisecond, Packed: mode,
		})
		if err != nil {
			t.Fatalf("%s: fallback should mask the ring kill: %v", name, err)
		}
		return w, ctx
	}
	wPacked, ctxPacked := run("chaos-packed", PackedOn)
	if c := ctxPacked.Metrics().Count(metrics.CounterRingFallback); c == 0 {
		t.Fatal("packed run recorded no ring fallback — fault never fired")
	}
	wPoint, _ := run("chaos-perpoint", PackedOff)
	bitsEqualSlices(t, "weights", wPacked, wPoint)
}
