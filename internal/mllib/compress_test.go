package mllib

// End-to-end tests for compressed training: lossy gradient aggregation
// with error feedback must reach the dense loss, and the convergence
// guardrail must disable a misbehaving codec instead of letting a run
// diverge silently.

import (
	"math"
	"testing"

	"sparker/internal/collective"
	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
)

// wideTrainingSet builds a separable dataset with dim dense-ish
// features — wide enough that gradient quantization error is actually
// exercised (the 2-feature lattice set quantizes near-exactly).
func wideTrainingSet(ctx *rdd.Context, n, dim, parts int) *rdd.RDD[LabeledPoint] {
	return rdd.Generate(ctx, parts, func(part int) ([]LabeledPoint, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]LabeledPoint, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx := make([]int32, dim)
			vals := make([]float64, dim)
			margin := 0.0
			for j := 0; j < dim; j++ {
				idx[j] = int32(j)
				// Deterministic pseudo-random features in [-0.5, 0.5] with
				// per-feature magnitude spread, so chunk max-abs scaling sees
				// mixed scales.
				v := (float64((i*31+j*17)%101)/101 - 0.5) * float64(1+j%5)
				vals[j] = v
				// Hidden weights alternate sign with decaying magnitude.
				w := float64(1+dim-j) / float64(dim)
				if j%2 == 1 {
					w = -w
				}
				margin += w * v
			}
			label := 0.0
			if margin > 0 {
				label = 1
			}
			sv, err := linalg.NewSparse(dim, idx, vals)
			if err != nil {
				return nil, err
			}
			out = append(out, LabeledPoint{Label: label, Features: sv})
		}
		return out, nil
	}).Cache()
}

// TestCompressedGDReachesDenseLoss is the convergence acceptance test:
// logistic regression under int8 gradient compression with error
// feedback must reach the dense run's final loss within 1.2× the dense
// iteration count; fp16 (whose quantization error is ~2⁻¹¹ relative)
// must track the dense trajectory almost exactly.
func TestCompressedGDReachesDenseLoss(t *testing.T) {
	const (
		n, dim      = 480, 32
		parts       = 4
		denseIters  = 25
		lossyBudget = 30 // 1.2 × denseIters
	)
	ctx := testContext(t, 4, 1)
	train := wideTrainingSet(ctx, n, dim, parts)
	run := func(iters int, comp collective.Compression) []float64 {
		_, losses, err := RunGradientDescent(train, LogisticGradient{}, SimpleUpdater{}, make([]float64, dim), GDConfig{
			Iterations:  iters,
			StepSize:    1,
			Strategy:    StrategyAllReduce,
			Compression: comp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	dense := run(denseIters, collective.Compression{})
	target := dense[len(dense)-1]

	for _, tc := range []struct {
		name string
		comp collective.Compression
	}{
		{"fp16", collective.Compression{Codec: collective.CodecFP16}},
		{"int8+ef", collective.Compression{Codec: collective.CodecInt8, ErrorFeedback: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			losses := run(lossyBudget, tc.comp)
			reached := -1
			for i, l := range losses {
				if l <= target*1.001 { // within 0.1% of the dense final loss
					reached = i + 1
					break
				}
			}
			t.Logf("dense reached %.6f in %d iters; %s losses tail %.6f (hit at iter %d)",
				target, denseIters, tc.name, losses[len(losses)-1], reached)
			if reached < 0 {
				t.Fatalf("%s never reached the dense loss %.6f within %d iterations (final %.6f)",
					tc.name, target, lossyBudget, losses[len(losses)-1])
			}
			if reached > lossyBudget {
				t.Fatalf("%s took %d iterations to the dense loss, budget %d (1.2× dense)", tc.name, reached, lossyBudget)
			}
			// The guardrail must not have tripped on a healthy run.
			if c := ctx.Metrics().Counters()[metrics.CounterCompressDisabled]; c != 0 {
				t.Fatalf("compression guardrail tripped %d times during a converging run", c)
			}
		})
	}
}

// TestCompressedLBFGSMatchesDense: quantized cost/gradient aggregation
// (no error feedback — line-search probes make residual re-injection
// incoherent) must still train L-BFGS to a model close to dense.
func TestCompressedLBFGSMatchesDense(t *testing.T) {
	const n, dim = 400, 16
	ctx := testContext(t, 3, 1)
	train := wideTrainingSet(ctx, n, dim, 3)
	cfg := LBFGSConfig{Iterations: 15, Strategy: StrategyAllReduce}
	dense, err := TrainLogisticRegressionLBFGS(train, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Compression = collective.Compression{Codec: collective.CodecFP16}
	comp, err := TrainLogisticRegressionLBFGS(train, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dLoss := dense.Losses[len(dense.Losses)-1]
	cLoss := comp.Losses[len(comp.Losses)-1]
	t.Logf("L-BFGS final loss: dense %.6f, fp16 %.6f", dLoss, cLoss)
	if cLoss > dLoss*1.05+1e-9 {
		t.Fatalf("fp16 L-BFGS final loss %.6f, dense %.6f: more than 5%% worse", cLoss, dLoss)
	}
	pts, err := rdd.Collect(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := comp.Accuracy(pts); acc < 0.9 {
		t.Fatalf("fp16 L-BFGS accuracy %v < 0.9", acc)
	}
}

// TestCompressGuardTripsAndStaysOff exercises the guardrail state
// machine directly: three consecutive rises disable compression for the
// rest of the run, a non-finite loss disables it immediately, and a
// tripped guard stops emitting aggregation options and records the
// metrics marker.
func TestCompressGuardTripsAndStaysOff(t *testing.T) {
	ctx := testContext(t, 1, 1)
	comp := collective.Compression{Codec: collective.CodecInt8}

	g := newCompressGuard(comp)
	if len(g.options()) != 1 {
		t.Fatal("fresh guard must pass the compression option")
	}
	// Rises interleaved with a drop: counter must reset, guard stays on.
	for _, l := range []float64{1.0, 1.1, 1.2, 0.9, 1.0, 1.1} {
		g.observe(ctx, l)
	}
	if g.options() == nil {
		t.Fatal("guard tripped without three consecutive rises")
	}
	// Third consecutive rise trips it.
	g.observe(ctx, 1.2)
	if g.options() != nil {
		t.Fatal("three consecutive rises must disable compression")
	}
	// Once off, it stays off even when the loss recovers.
	g.observe(ctx, 0.1)
	if g.options() != nil {
		t.Fatal("a tripped guard must stay off")
	}

	nan := newCompressGuard(comp)
	nan.observe(ctx, math.NaN())
	if nan.options() != nil {
		t.Fatal("a non-finite loss must disable compression immediately")
	}

	if c := ctx.Metrics().Counters()[metrics.CounterCompressDisabled]; c != 2 {
		t.Fatalf("recorded %d compress-disabled markers, want 2", c)
	}

	// A guard with no codec never observes or emits anything.
	off := newCompressGuard(collective.Compression{})
	off.observe(ctx, math.NaN())
	if off.options() != nil {
		t.Fatal("codec-none guard must not emit options")
	}
	if c := ctx.Metrics().Counters()[metrics.CounterCompressDisabled]; c != 2 {
		t.Fatal("codec-none guard must not record markers")
	}
}
