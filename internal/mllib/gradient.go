package mllib

import (
	"math"

	"sparker/internal/linalg"
)

// Gradient computes per-sample loss gradients, MLlib style: the sample
// gradient is accumulated into cumGradient and the sample loss
// returned.
type Gradient interface {
	Compute(features linalg.SparseVector, label float64, weights []float64, cumGradient []float64) float64
}

// LogisticGradient is the binary logistic loss (labels in {0, 1}).
type LogisticGradient struct{}

// Compute implements Gradient.
func (LogisticGradient) Compute(x linalg.SparseVector, label float64, w, cum []float64) float64 {
	margin := -linalg.Dot(w, x)
	multiplier := 1.0/(1.0+math.Exp(margin)) - label
	linalg.Axpy(multiplier, x, cum)
	if label > 0 {
		return log1pExp(margin)
	}
	return log1pExp(margin) - margin
}

// log1pExp computes log(1 + exp(m)) stably. It delegates to the
// linalg copy so the fused CSR kernels and this scalar path share one
// definition and therefore identical bits.
func log1pExp(m float64) float64 { return linalg.Log1pExp(m) }

// HingeGradient is the SVM hinge loss (labels in {0, 1}, internally
// rescaled to {-1, +1} as MLlib does).
type HingeGradient struct{}

// Compute implements Gradient.
func (HingeGradient) Compute(x linalg.SparseVector, label float64, w, cum []float64) float64 {
	scaled := 2*label - 1
	dot := linalg.Dot(w, x)
	if 1-scaled*dot > 0 {
		linalg.Axpy(-scaled, x, cum)
		return 1 - scaled*dot
	}
	return 0
}

// LeastSquaresGradient is the squared loss (for linear regression —
// not in the paper's workload set but part of MLlib's gradient family).
type LeastSquaresGradient struct{}

// Compute implements Gradient.
func (LeastSquaresGradient) Compute(x linalg.SparseVector, label float64, w, cum []float64) float64 {
	diff := linalg.Dot(w, x) - label
	linalg.Axpy(diff, x, cum)
	return diff * diff / 2
}

// Updater applies one aggregated gradient step, returning the new
// weights and the regularization value for the loss report.
type Updater interface {
	Update(weights, gradient []float64, stepSize float64, iter int, regParam float64) ([]float64, float64)
}

// SimpleUpdater is plain SGD with a 1/sqrt(t) schedule and no
// regularization (the paper's LR setting: regParam=0).
type SimpleUpdater struct{}

// Update implements Updater.
func (SimpleUpdater) Update(w, g []float64, stepSize float64, iter int, _ float64) ([]float64, float64) {
	step := stepSize / math.Sqrt(float64(iter))
	out := make([]float64, len(w))
	copy(out, w)
	linalg.AxpyDense(-step, g, out)
	return out, 0
}

// SquaredL2Updater adds L2 regularization via weight decay (the
// paper's SVM setting: regParam=0.01).
type SquaredL2Updater struct{}

// Update implements Updater.
func (SquaredL2Updater) Update(w, g []float64, stepSize float64, iter int, regParam float64) ([]float64, float64) {
	step := stepSize / math.Sqrt(float64(iter))
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i] * (1 - step*regParam)
	}
	linalg.AxpyDense(-step, g, out)
	norm := linalg.Norm2(out)
	return out, 0.5 * regParam * norm * norm
}
