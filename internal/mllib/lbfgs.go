package mllib

import (
	"context"
	"fmt"
	"math"

	"sparker/internal/collective"
	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

// LBFGSConfig configures RunLBFGS. MLlib's LogisticRegression actually
// optimizes with L-BFGS (each cost evaluation is one treeAggregate over
// the data — the very aggregation the paper profiles); this completes
// the optimizer family alongside mini-batch SGD.
type LBFGSConfig struct {
	// Iterations caps outer L-BFGS iterations (default 50).
	Iterations int
	// HistorySize is the number of (s, y) correction pairs (default 10).
	HistorySize int
	// RegParam is the L2 regularization strength.
	RegParam float64
	// ConvergenceTol stops on relative loss improvement (default 1e-6).
	ConvergenceTol float64
	// MaxLineSearch caps backtracking probes per iteration (default 10).
	MaxLineSearch int
	// Strategy, Depth, Parallelism select the aggregation path.
	Strategy    Strategy
	Depth       int
	Parallelism int
	// Compression selects a wire codec for the cost/gradient
	// aggregations (ring strategies only), under the same convergence
	// guardrail as GDConfig.Compression. Error feedback is usually a
	// poor fit for L-BFGS — line-search probes evaluate several
	// candidate points per iteration, so residuals mix gradients from
	// different weights — but quantization without feedback is safe.
	Compression collective.Compression
	// Packed selects the CSR compute plane (default PackedAuto; see
	// GDConfig.Packed). Line-search probes reuse the same packed
	// partitions, so every cost evaluation skips the per-point fold.
	Packed PackedMode
}

func (c *LBFGSConfig) fill() {
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.HistorySize == 0 {
		c.HistorySize = 10
	}
	if c.ConvergenceTol == 0 {
		c.ConvergenceTol = 1e-6
	}
	if c.MaxLineSearch == 0 {
		c.MaxLineSearch = 10
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
}

// RunLBFGS minimizes the regularized empirical loss with limited-memory
// BFGS, evaluating cost and gradient with one distributed aggregation
// per probe. Returns the weights and the per-iteration loss history.
func RunLBFGS(data *rdd.RDD[LabeledPoint], grad Gradient, initial []float64, cfg LBFGSConfig) (finalW []float64, lossHist []float64, retErr error) {
	cfg.fill()
	dim := len(initial)
	if dim == 0 {
		return nil, nil, fmt.Errorf("mllib: empty initial weights")
	}

	tr, root, tctx := startTrainSpan(data.Context(), "lbfgs", cfg.Strategy, nil)
	defer func() { root.EndErr(retErr) }()
	guard := newCompressGuard(cfg.Compression)

	var plan *packedPlan
	var kind linalg.CSRGradKind
	if k, ok := packedKind(grad); ok && cfg.Packed != PackedOff {
		kind = k
		plan = newPackedPlan(data, dim)
		defer plan.release()
	} else if cfg.Packed == PackedOn {
		return nil, nil, fmt.Errorf("mllib: Packed=on but %T has no fused kernel", grad)
	}
	root.SetAttr("packed", fmt.Sprint(plan != nil))

	// costAt evaluates (loss, gradient) at w with one aggregation,
	// parented under the caller's span (line-search probes share their
	// iteration's span).
	costAt := func(ictx context.Context, w []float64) (float64, []float64, error) {
		snapshot := append([]float64(nil), w...)
		var agg []float64
		var err error
		if plan != nil {
			agg, err = AggregateF64Ctx(ictx, plan.packed, dim+2,
				packedGradSeqOp(kind, snapshot, dim, 1, 0, 0),
				cfg.Strategy, cfg.Depth, cfg.Parallelism, guard.options()...)
		} else {
			agg, err = AggregateF64Ctx(ictx, data, dim+2, func(acc []float64, p LabeledPoint) []float64 {
				loss := grad.Compute(p.Features, p.Label, snapshot, acc[:dim])
				acc[dim] += loss
				acc[dim+1]++
				return acc
			}, cfg.Strategy, cfg.Depth, cfg.Parallelism, guard.options()...)
		}
		if err != nil {
			return 0, nil, err
		}
		n := agg[dim+1]
		if n == 0 {
			return 0, nil, fmt.Errorf("mllib: empty dataset")
		}
		g := make([]float64, dim)
		for i := range g {
			g[i] = agg[i]/n + cfg.RegParam*w[i]
		}
		norm := linalg.Norm2(w)
		loss := agg[dim]/n + 0.5*cfg.RegParam*norm*norm
		return loss, g, nil
	}

	w := append([]float64(nil), initial...)
	loss, g, err := costAt(tctx, w)
	if err != nil {
		return nil, nil, err
	}
	losses := []float64{loss}

	var sHist, yHist [][]float64
	var rhoHist []float64

	for iter := 0; iter < cfg.Iterations; iter++ {
		it, ictx := startIteration(tr, root, tctx, iter+1)
		dir := twoLoop(g, sHist, yHist, rhoHist)
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Backtracking Armijo line search.
		step := 1.0
		if len(sHist) == 0 {
			step = 1.0 / (1.0 + linalg.Norm2(g)) // cautious first step
		}
		gd := linalg.DotDense(g, dir)
		if gd >= 0 {
			// Not a descent direction (numerical trouble): restart from
			// steepest descent.
			sHist, yHist, rhoHist = nil, nil, nil
			copy(dir, g)
			for i := range dir {
				dir[i] = -dir[i]
			}
			gd = linalg.DotDense(g, dir)
		}
		var newW []float64
		var newLoss float64
		var newG []float64
		ok := false
		for probe := 0; probe < cfg.MaxLineSearch; probe++ {
			cand := make([]float64, dim)
			for i := range cand {
				cand[i] = w[i] + step*dir[i]
			}
			l, gg, err := costAt(ictx, cand)
			if err != nil {
				it.EndErr(err)
				return nil, nil, err
			}
			if l <= loss+1e-4*step*gd {
				newW, newLoss, newG, ok = cand, l, gg, true
				break
			}
			step /= 2
		}
		if !ok {
			it.End()
			break // line search failed: converged as far as we can go
		}

		// Update history.
		s := make([]float64, dim)
		y := make([]float64, dim)
		for i := range s {
			s[i] = newW[i] - w[i]
			y[i] = newG[i] - g[i]
		}
		sy := linalg.DotDense(s, y)
		if sy > 1e-12 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > cfg.HistorySize {
				sHist, yHist, rhoHist = sHist[1:], yHist[1:], rhoHist[1:]
			}
		}
		improvement := (loss - newLoss) / math.Max(math.Abs(loss), 1)
		w, loss, g = newW, newLoss, newG
		losses = append(losses, loss)
		guard.observe(data.Context(), loss)
		it.End()
		if improvement < cfg.ConvergenceTol {
			break
		}
	}
	return w, losses, nil
}

// twoLoop applies the L-BFGS two-loop recursion: returns H·g where H
// approximates the inverse Hessian from the correction history.
func twoLoop(g []float64, sHist, yHist [][]float64, rho []float64) []float64 {
	q := append([]float64(nil), g...)
	k := len(sHist)
	alpha := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		alpha[i] = rho[i] * linalg.DotDense(sHist[i], q)
		linalg.AxpyDense(-alpha[i], yHist[i], q)
	}
	if k > 0 {
		// Initial Hessian scaling γ = sᵀy / yᵀy.
		yy := linalg.DotDense(yHist[k-1], yHist[k-1])
		if yy > 0 {
			linalg.Scal(linalg.DotDense(sHist[k-1], yHist[k-1])/yy, q)
		}
	}
	for i := 0; i < k; i++ {
		beta := rho[i] * linalg.DotDense(yHist[i], q)
		linalg.AxpyDense(alpha[i]-beta, sHist[i], q)
	}
	return q
}

// TrainLogisticRegressionLBFGS trains binary LR with L-BFGS — MLlib's
// default LR path.
func TrainLogisticRegressionLBFGS(data *rdd.RDD[LabeledPoint], numFeatures int, cfg LBFGSConfig) (*LinearModel, error) {
	if numFeatures <= 0 {
		return nil, fmt.Errorf("mllib: NumFeatures must be positive")
	}
	initial := make([]float64, numFeatures)
	w, losses, err := RunLBFGS(data, LogisticGradient{}, initial, cfg)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Losses: losses, Threshold: 0.5, kind: "logistic-regression"}, nil
}
