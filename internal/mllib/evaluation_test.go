package mllib

import (
	"math"
	"testing"
	"testing/quick"

	"sparker/internal/linalg"
)

func TestBinaryMetricsValidation(t *testing.T) {
	if _, err := NewBinaryMetrics([]float64{1}, []float64{1, 0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewBinaryMetrics(nil, nil); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := NewBinaryMetrics([]float64{1}, []float64{2}); err == nil {
		t.Error("non-binary label should fail")
	}
}

func TestConfusionAndPR(t *testing.T) {
	// scores: perfect separation at 0.5.
	m, err := NewBinaryMetrics(
		[]float64{0.9, 0.8, 0.2, 0.1},
		[]float64{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, tn, fn := m.ConfusionAt(0.5)
	if tp != 2 || fp != 0 || tn != 2 || fn != 0 {
		t.Fatalf("confusion = %d %d %d %d", tp, fp, tn, fn)
	}
	p, r := m.PrecisionRecallAt(0.5)
	if p != 1 || r != 1 {
		t.Fatalf("P/R = %v/%v", p, r)
	}
	if f1 := m.F1At(0.5); f1 != 1 {
		t.Fatalf("F1 = %v", f1)
	}
	// Threshold below everything: recall 1, precision 0.5.
	p, r = m.PrecisionRecallAt(-1)
	if p != 0.5 || r != 1 {
		t.Fatalf("low-threshold P/R = %v/%v", p, r)
	}
	if auc := m.AUC(); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	// Scores independent of labels: AUC ≈ 0.5.
	n := 2000
	scores := make([]float64, n)
	labels := make([]float64, n)
	s := uint64(12345)
	for i := range scores {
		s = s*6364136223846793005 + 1442695040888963407
		scores[i] = float64((s>>20)%1000) / 1000
		s = s*6364136223846793005 + 1442695040888963407
		labels[i] = float64((s >> 40) % 2)
	}
	m, err := NewBinaryMetrics(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := m.AUC(); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %v, want ≈ 0.5", auc)
	}
}

func TestAUCWithTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 by tie correction.
	m, err := NewBinaryMetrics([]float64{1, 1, 1, 1}, []float64{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if auc := m.AUC(); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(raw []float64, labelBits []bool) bool {
		n := len(raw)
		if n < 4 || len(labelBits) < n {
			return true
		}
		scores := make([]float64, n)
		labels := make([]float64, n)
		hasPos, hasNeg := false, false
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			scores[i] = math.Mod(v, 100)
			if labelBits[i] {
				labels[i] = 1
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		a, err := NewBinaryMetrics(scores, labels)
		if err != nil {
			return false
		}
		// Monotone transform: scale and shift.
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = 3*s + 7
		}
		b, err := NewBinaryMetrics(transformed, labels)
		if err != nil {
			return false
		}
		return math.Abs(a.AUC()-b.AUC()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateModelOnTrainedLR(t *testing.T) {
	ctx := testContext(t, 2, 2)
	train := trainingSet(ctx, 400, 2, 4)
	m, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 30, StepSize: 5, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := collectTrainingSet(t, train)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := EvaluateModel(m, pts)
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUC(); auc < 0.95 {
		t.Fatalf("trained LR AUC = %v, want ≥ 0.95 on separable data", auc)
	}
	if f1 := metrics.F1At(0); f1 < 0.85 {
		t.Fatalf("F1 at margin 0 = %v", f1)
	}
}

func TestSilhouetteApprox(t *testing.T) {
	m := &KMeansModel{Centers: [][]float64{{0, 0}, {10, 10}}}
	mk := func(a, b float64) linalg.SparseVector {
		v, _ := linalg.NewSparse(2, []int32{0, 1}, []float64{a, b})
		return v
	}
	// Tight, well-separated points: silhouette near 1.
	good := []linalg.SparseVector{mk(0.1, 0), mk(0, 0.1), mk(10, 10.1), mk(9.9, 10)}
	if s := SilhouetteApprox(m, good); s < 0.9 {
		t.Fatalf("well-separated silhouette = %v", s)
	}
	// Points halfway between centers: silhouette near 0.
	mid := []linalg.SparseVector{mk(5, 5.01), mk(5.01, 5)}
	if s := SilhouetteApprox(m, mid); math.Abs(s) > 0.1 {
		t.Fatalf("ambiguous silhouette = %v", s)
	}
	if s := SilhouetteApprox(m, nil); s != 0 {
		t.Fatalf("empty silhouette = %v", s)
	}
	if s := SilhouetteApprox(&KMeansModel{Centers: [][]float64{{0}}}, good); s != 0 {
		t.Fatalf("single-cluster silhouette = %v", s)
	}
}
