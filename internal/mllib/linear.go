package mllib

import (
	"fmt"
	"math"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

// LinearModel is a trained linear classifier.
type LinearModel struct {
	// Weights is the learned weight vector.
	Weights []float64
	// Losses is the per-iteration training loss history.
	Losses []float64
	// Threshold is the decision boundary on the margin (0 for SVM) or
	// probability (0.5 for LR).
	Threshold float64
	kind      string
}

// Kind reports the model family ("logistic-regression" or "svm").
func (m *LinearModel) Kind() string { return m.kind }

// NumFeatures returns the weight vector's dimensionality — part of the
// unified Model interface.
func (m *LinearModel) NumFeatures() int { return len(m.Weights) }

// Margin returns wᵀx.
//
// Model-family specific: interface-generic callers (serving layers)
// should use Predict/PredictBatch via the unified Model interface;
// Margin only means something for linear families.
func (m *LinearModel) Margin(x linalg.SparseVector) float64 {
	return linalg.Dot(m.Weights, x)
}

// PredictProb returns P(label=1|x) for logistic models.
//
// Model-family specific, like Margin: prefer the unified Model
// interface for dispatching over heterogeneous models.
func (m *LinearModel) PredictProb(x linalg.SparseVector) float64 {
	return 1.0 / (1.0 + math.Exp(-m.Margin(x)))
}

// Predict returns the 0/1 class.
func (m *LinearModel) Predict(x linalg.SparseVector) float64 {
	switch m.kind {
	case "svm":
		if m.Margin(x) >= m.Threshold {
			return 1
		}
		return 0
	default:
		if m.PredictProb(x) >= m.Threshold {
			return 1
		}
		return 0
	}
}

// PredictBatch fills out[i] with the class of xs[i]; len(out) must
// equal len(xs). Part of the unified Model interface.
func (m *LinearModel) PredictBatch(xs []linalg.SparseVector, out []float64) {
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
}

// Accuracy evaluates the model on data.
func (m *LinearModel) Accuracy(data []LabeledPoint) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, p := range data {
		if m.Predict(p.Features) == p.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// LogisticRegressionConfig configures TrainLogisticRegression. The
// paper's Table 3 setting is regParam=0, elasticNetParam=0 — plain
// unregularized logistic loss.
type LogisticRegressionConfig struct {
	NumFeatures int
	GD          GDConfig
}

// TrainLogisticRegression trains binary LR with mini-batch gradient
// descent over the chosen aggregation strategy.
func TrainLogisticRegression(data *rdd.RDD[LabeledPoint], cfg LogisticRegressionConfig) (*LinearModel, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("mllib: NumFeatures must be positive")
	}
	initial := make([]float64, cfg.NumFeatures)
	w, losses, err := RunGradientDescent(data, LogisticGradient{}, SimpleUpdater{}, initial, cfg.GD)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Losses: losses, Threshold: 0.5, kind: "logistic-regression"}, nil
}

// SVMConfig configures TrainSVM. The paper's Table 3 setting is
// miniBatchFraction=1.0, regParam=0.01.
type SVMConfig struct {
	NumFeatures int
	GD          GDConfig
}

// TrainSVM trains a linear SVM (hinge loss, L2 regularization).
func TrainSVM(data *rdd.RDD[LabeledPoint], cfg SVMConfig) (*LinearModel, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("mllib: NumFeatures must be positive")
	}
	if cfg.GD.RegParam == 0 {
		cfg.GD.RegParam = 0.01
	}
	initial := make([]float64, cfg.NumFeatures)
	w, losses, err := RunGradientDescent(data, HingeGradient{}, SquaredL2Updater{}, initial, cfg.GD)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Weights: w, Losses: losses, Threshold: 0, kind: "svm"}, nil
}
