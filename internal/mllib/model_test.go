package mllib

import (
	"bytes"
	"math/rand"
	"testing"

	"sparker/internal/linalg"
)

// randModel builds a random instance of each Model implementation so
// the round-trip property test covers every family.
func randModels(rng *rand.Rand) []Model {
	dim := 5 + rng.Intn(20)
	randVec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	lr := &LinearModel{Weights: randVec(dim), Losses: randVec(3), Threshold: 0.5, kind: "logistic-regression"}
	svm := &LinearModel{Weights: randVec(dim), Losses: randVec(4), Threshold: 0, kind: "svm"}
	reg := &RegressionModel{Weights: randVec(dim), Losses: randVec(2)}
	k := 2 + rng.Intn(4)
	km := &KMeansModel{Centers: make([][]float64, k), CostHistory: randVec(3)}
	for i := range km.Centers {
		km.Centers[i] = randVec(dim)
	}
	return []Model{lr, svm, reg, km}
}

func randPoints(rng *rand.Rand, dim, n int) []linalg.SparseVector {
	xs := make([]linalg.SparseVector, n)
	for i := range xs {
		nnz := 1 + rng.Intn(dim)
		idx := rng.Perm(dim)[:nnz]
		vals := make([]float64, nnz)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		ii := make([]int32, nnz)
		for j, v := range idx {
			ii[j] = int32(v)
		}
		xs[i] = linalg.SparseVector{Indices: ii, Values: vals}
	}
	return xs
}

// TestModelRoundTripAllKinds is the save/load property test for every
// model family: SaveModel then LoadModel must yield a model whose
// predictions agree bit-for-bit on random inputs.
func TestModelRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		for _, m := range randModels(rng) {
			var buf bytes.Buffer
			if err := SaveModel(&buf, m); err != nil {
				t.Fatalf("SaveModel(%s): %v", m.Kind(), err)
			}
			got, err := LoadModel(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadModel(%s): %v", m.Kind(), err)
			}
			if got.Kind() != m.Kind() {
				t.Fatalf("kind round-trip: got %q want %q", got.Kind(), m.Kind())
			}
			if got.NumFeatures() != m.NumFeatures() {
				t.Fatalf("%s: NumFeatures %d != %d", m.Kind(), got.NumFeatures(), m.NumFeatures())
			}
			for _, x := range randPoints(rng, m.NumFeatures(), 25) {
				if a, b := m.Predict(x), got.Predict(x); a != b {
					t.Fatalf("%s: prediction diverged after round trip: %v vs %v", m.Kind(), a, b)
				}
			}
		}
	}
}

// TestModelFileRoundTrip exercises the file helpers used by
// sparker-train -save-model / sparker-serve -model.
func TestModelFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range randModels(rng) {
		path := t.TempDir() + "/" + m.Kind() + ".spkm"
		if err := SaveModelFile(path, m); err != nil {
			t.Fatalf("SaveModelFile(%s): %v", m.Kind(), err)
		}
		got, err := LoadModelFile(path)
		if err != nil {
			t.Fatalf("LoadModelFile(%s): %v", m.Kind(), err)
		}
		x := randPoints(rng, m.NumFeatures(), 1)[0]
		if got.Predict(x) != m.Predict(x) {
			t.Fatalf("%s: file round trip diverged", m.Kind())
		}
	}
}

// TestPredictBatchMatchesPredict checks the batch path agrees with the
// scalar path for every model family — the invariant the sharded
// serving batcher relies on.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range randModels(rng) {
		xs := randPoints(rng, m.NumFeatures(), 64)
		out := make([]float64, len(xs))
		m.PredictBatch(xs, out)
		for i, x := range xs {
			if want := m.Predict(x); out[i] != want {
				t.Fatalf("%s: PredictBatch[%d]=%v, Predict=%v", m.Kind(), i, out[i], want)
			}
		}
	}
}

// TestLoadModelRejectsLDA: LDA predates the Model interface; the
// unified loader must point callers at LoadLDAModel instead of
// misparsing the payload.
func TestLoadModelRejectsLDA(t *testing.T) {
	m := &LDAModel{K: 2, Vocab: 3, Lambda: [][]float64{{1, 2, 3}, {4, 5, 6}}, Bounds: []float64{-1}}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadModel accepted an LDA payload")
	}
}
