package mllib

import (
	"fmt"
	"math"
	"testing"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

// blobRDD generates points around k well-separated dense centers.
func blobRDD(ctx *rdd.Context, n, dim, k, parts int) *rdd.RDD[linalg.SparseVector] {
	return rdd.Generate(ctx, parts, func(part int) ([]linalg.SparseVector, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]linalg.SparseVector, 0, hi-lo)
		for i := lo; i < hi; i++ {
			c := i % k
			idx := make([]int32, dim)
			vals := make([]float64, dim)
			for j := 0; j < dim; j++ {
				idx[j] = int32(j)
				// Center c lives at 10*c in every coordinate; jitter ±0.5.
				vals[j] = 10*float64(c) + float64((i*31+j*17)%100)/100 - 0.5
			}
			sv, err := linalg.NewSparse(dim, idx, vals)
			if err != nil {
				return nil, err
			}
			out = append(out, sv)
		}
		return out, nil
	}).Cache()
}

func TestKMeansRecoversBlobs(t *testing.T) {
	for _, s := range []Strategy{StrategyTree, StrategySplit} {
		t.Run(s.String(), func(t *testing.T) {
			ctx := testContext(t, 3, 2)
			const n, dim, k = 300, 3, 3
			pts := blobRDD(ctx, n, dim, k, 6)
			m, err := TrainKMeans(pts, KMeansConfig{
				K: k, NumFeatures: dim, Iterations: 15, Strategy: s,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Each learned center must sit near one blob center (0, 10
			// or 20 per coordinate), and all blobs must be covered.
			covered := map[int]bool{}
			for _, c := range m.Centers {
				blob := int(math.Round(c[0] / 10))
				for j := range c {
					if math.Abs(c[j]-10*float64(blob)) > 1 {
						t.Fatalf("center %v far from any blob", c)
					}
				}
				covered[blob] = true
			}
			if len(covered) != k {
				t.Fatalf("only %d blobs covered: %v", len(covered), m.Centers)
			}
			// Cost decreases (weakly) across iterations.
			for i := 1; i < len(m.CostHistory); i++ {
				if m.CostHistory[i] > m.CostHistory[i-1]+1e-6 {
					t.Fatalf("cost increased at %d: %v", i, m.CostHistory)
				}
			}
		})
	}
}

func TestKMeansPredict(t *testing.T) {
	m := &KMeansModel{Centers: [][]float64{{0, 0}, {10, 10}}}
	near0, _ := linalg.NewSparse(2, []int32{0, 1}, []float64{1, -1})
	near1, _ := linalg.NewSparse(2, []int32{0, 1}, []float64{9, 11})
	if m.Predict(near0) != 0 || m.Predict(near1) != 1 {
		t.Fatal("Predict picked wrong centers")
	}
	if !math.IsNaN((&KMeansModel{}).Cost()) {
		t.Fatal("empty model Cost should be NaN")
	}
}

func TestKMeansValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	pts := blobRDD(ctx, 10, 2, 2, 2)
	if _, err := TrainKMeans(pts, KMeansConfig{K: 0, NumFeatures: 2}); err == nil {
		t.Fatal("K=0 should fail")
	}
	if _, err := TrainKMeans(pts, KMeansConfig{K: 50, NumFeatures: 2}); err == nil {
		t.Fatal("K > points should fail")
	}
	if _, err := TrainKMeans(pts, KMeansConfig{K: 2, NumFeatures: 5}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestKMeansStrategiesAgree(t *testing.T) {
	ctx := testContext(t, 2, 2)
	pts := blobRDD(ctx, 120, 2, 2, 4)
	run := func(s Strategy) *KMeansModel {
		m, err := TrainKMeans(pts, KMeansConfig{K: 2, NumFeatures: 2, Iterations: 8, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(StrategyTree), run(StrategySplit)
	for c := range a.Centers {
		for j := range a.Centers[c] {
			if math.Abs(a.Centers[c][j]-b.Centers[c][j]) > 1e-9 {
				t.Fatalf("centers diverge: %v vs %v", a.Centers, b.Centers)
			}
		}
	}
}

func TestSqDist(t *testing.T) {
	x, _ := linalg.NewSparse(3, []int32{0, 2}, []float64{1, 2})
	c := []float64{1, 1, 0}
	// ||c-x||² = 0 + 1 + 4 = 5.
	if d := sqDist(c, x); math.Abs(d-5) > 1e-12 {
		t.Fatalf("sqDist = %v, want 5", d)
	}
}

func TestLDAInferDoc(t *testing.T) {
	const docs, vocab, topics, k = 120, 60, 3, 6
	ctx := testContext(t, 2, 2)
	corpus := corpusRDD(ctx, docs, vocab, topics, 4)
	m, err := TrainLDA(corpus, LDAConfig{K: k, Vocab: vocab, Iterations: 12, Strategy: StrategySplit, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	band := vocab / topics
	// A doc drawn purely from band 1 must infer a mixture concentrated
	// on topics whose mass lives in band 1.
	doc := Document{
		WordIDs: []int32{int32(band), int32(band + 3), int32(band + 7)},
		Counts:  []float64{3, 2, 4},
	}
	gamma := m.InferDoc(doc, 0, 0)
	var sum float64
	for _, g := range gamma {
		if g < 0 {
			t.Fatalf("negative mixture weight: %v", gamma)
		}
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mixture sums to %v", sum)
	}
	// Weight mass on band-1 topics must dominate.
	dists := m.TopicDistributions()
	var band1Weight float64
	for kk, g := range gamma {
		var mass float64
		for w := band; w < 2*band; w++ {
			mass += dists[kk][w]
		}
		if mass > 0.5 {
			band1Weight += g
		}
	}
	if band1Weight < 0.6 {
		t.Fatalf("band-1 topics only got %.2f of the mixture: %v", band1Weight, gamma)
	}
	// Empty doc: uniform.
	uniform := m.InferDoc(Document{}, 0, 0)
	for _, g := range uniform {
		if math.Abs(g-1.0/k) > 1e-9 {
			t.Fatalf("empty doc mixture not uniform: %v", uniform)
		}
	}
	_ = fmt.Sprint(gamma)
}
