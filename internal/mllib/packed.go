package mllib

// packed.go wires the linalg CSR compute plane into the optimizers:
// each data partition is packed once into a contiguous CSRMatrix,
// cached in the executor's block store under a key derived from the
// *data* RDD (stable across training runs), and folded through the
// fused multi-core kernels instead of the per-point Gradient.Compute
// closure. The fused kernels are property-tested bitwise-identical to
// the sequential per-point fold at every worker count, so flipping
// Packed never changes a training result — only how fast it arrives.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sparker/internal/linalg"
	"sparker/internal/metrics"
	"sparker/internal/rdd"
)

// PackedMode selects whether training folds through packed CSR
// partitions (the fused compute plane) or the per-point closure path.
type PackedMode int

const (
	// PackedAuto (the default) uses the packed path whenever a fused
	// kernel exists for the model — logistic, least-squares and hinge
	// gradients, and KMeans. Custom Gradient implementations fall back
	// to the per-point fold silently.
	PackedAuto PackedMode = iota
	// PackedOn requires the packed path; training fails fast when no
	// fused kernel matches the model (surfacing the misconfiguration
	// instead of silently running slow).
	PackedOn
	// PackedOff forces the per-point closure fold.
	PackedOff
)

// String implements fmt.Stringer.
func (p PackedMode) String() string {
	switch p {
	case PackedAuto:
		return "auto"
	case PackedOn:
		return "on"
	case PackedOff:
		return "off"
	default:
		return fmt.Sprintf("PackedMode(%d)", int(p))
	}
}

// packedKind maps a Gradient implementation to its fused kernel, if
// one exists.
func packedKind(g Gradient) (linalg.CSRGradKind, bool) {
	switch g.(type) {
	case LogisticGradient, *LogisticGradient:
		return linalg.CSRLogistic, true
	case LeastSquaresGradient, *LeastSquaresGradient:
		return linalg.CSRLeastSquares, true
	case HingeGradient, *HingeGradient:
		return linalg.CSRHinge, true
	default:
		return 0, false
	}
}

// PackPoints packs one partition of labeled points into a CSR matrix
// with column dimensionality dim (the weight vector's length — packing
// validates every feature index against it up front, once, instead of
// every kernel pass).
func PackPoints(part, dim int, pts []LabeledPoint) (*linalg.CSRMatrix, error) {
	nnz := 0
	for i := range pts {
		nnz += len(pts[i].Features.Indices)
	}
	b := linalg.NewCSRBuilder(dim, len(pts), nnz)
	for i := range pts {
		if err := b.AppendRow(pts[i].Label, pts[i].Features.Indices, pts[i].Features.Values); err != nil {
			return nil, fmt.Errorf("mllib: packing partition %d point %d: %w", part, i, err)
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.Part = part
	return m, nil
}

// PackVectors packs one partition of unlabeled points (KMeans input)
// into a CSR matrix.
func PackVectors(part, dim int, xs []linalg.SparseVector) (*linalg.CSRMatrix, error) {
	nnz := 0
	for i := range xs {
		nnz += len(xs[i].Indices)
	}
	b := linalg.NewCSRBuilder(dim, len(xs), nnz)
	for i := range xs {
		if err := b.AppendRow(0, xs[i].Indices, xs[i].Values); err != nil {
			return nil, fmt.Errorf("mllib: packing partition %d point %d: %w", part, i, err)
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.Labels = nil
	m.Part = part
	return m, nil
}

// packedPart is the single element of each packed-RDD partition: the
// matrix plus the executor-local facts the seqOp needs (core budget for
// the kernel's shard count, registry for compute telemetry). One
// element per partition means core.Aggregate's per-element fold fires
// the fused kernel exactly once per partition.
type packedPart struct {
	M     *linalg.CSRMatrix
	Cores int
	Reg   *metrics.Registry
}

// packedPlan is one training run's handle on the packed dataset.
type packedPlan struct {
	packed *rdd.RDD[packedPart]
}

// csrBlockKey names the durable block holding a packed partition. It is
// keyed by the DATA RDD's id (not the packed RDD's, which is fresh per
// run) and the packing dimensionality, so every training run over the
// same cached dataset at the same dim reuses the bytes.
func csrBlockKey(dataID int64, dim, part int) string {
	return fmt.Sprintf("csr/%d/%d/%d", dataID, dim, part)
}

// decodedViews caches the last zero-copy decode of each packed block.
// DecodeCSR itself is cheap, but the *CSRMatrix it returns carries
// lazily built derived state (the CSC view of the parallel scatter, the
// sampled-pass segment bounds) that costs O(nnz) to rebuild — and a
// fresh decode per training run would rebuild it every run. A hit is
// only valid while the store still returns the very same backing array
// the cached matrix aliases; an evicted-and-repacked block has a new
// array and falls through to a fresh decode. Capped crudely: the cache
// mirrors the block store's working set, so overflow just drops it.
var decodedViews struct {
	mu sync.Mutex
	m  map[string]decodedView
}

type decodedView struct {
	data *byte // &wire[0] of the decoded bytes
	n    int
	mat  *linalg.CSRMatrix
}

const decodedViewsCap = 256

func loadDecodedView(key string, wire []byte) (*linalg.CSRMatrix, bool) {
	decodedViews.mu.Lock()
	defer decodedViews.mu.Unlock()
	v, ok := decodedViews.m[key]
	if !ok || len(wire) != v.n || v.n == 0 || &wire[0] != v.data {
		return nil, false
	}
	return v.mat, true
}

func storeDecodedView(key string, wire []byte, m *linalg.CSRMatrix) {
	if len(wire) == 0 {
		return
	}
	decodedViews.mu.Lock()
	defer decodedViews.mu.Unlock()
	if decodedViews.m == nil || len(decodedViews.m) >= decodedViewsCap {
		decodedViews.m = make(map[string]decodedView)
	}
	decodedViews.m[key] = decodedView{data: &wire[0], n: len(wire), mat: m}
}

// materializePacked resolves one packed partition on the executor:
// block-store hit decodes zero-copy (the matrix arenas alias the stored
// bytes — safe because the store holds blocks by reference and never
// mutates them); miss packs from the parent partition, stores the wire
// bytes, and returns the zero-copy view of what was stored, so memory
// holds a single arena copy either way. Repeat hits on an unchanged
// block return the same *CSRMatrix, so derived state built on it (CSC
// view, segment bounds) survives across training runs.
func materializePacked(ec *rdd.ExecContext, key string, pack func() (*linalg.CSRMatrix, error)) ([]packedPart, error) {
	if wire, ok := ec.Store.GetLocal(key); ok {
		if m, ok := loadDecodedView(key, wire); ok {
			return []packedPart{{M: m, Cores: ec.Cores, Reg: ec.Registry}}, nil
		}
		if m, _, err := linalg.DecodeCSR(wire); err == nil {
			storeDecodedView(key, wire, m)
			return []packedPart{{M: m, Cores: ec.Cores, Reg: ec.Registry}}, nil
		}
		// Undecodable bytes (corrupt or from an older layout): repack.
	}
	m, err := pack()
	if err != nil {
		return nil, err
	}
	wire := linalg.AppendCSR(make([]byte, 0, m.EncodedSize()), m)
	ec.Store.PutLocal(key, wire)
	zc, _, err := linalg.DecodeCSR(wire)
	if err != nil {
		return nil, fmt.Errorf("mllib: re-decoding packed partition: %w", err)
	}
	storeDecodedView(key, wire, zc)
	return []packedPart{{M: zc, Cores: ec.Cores, Reg: ec.Registry}}, nil
}

// newPackedPlan derives the packed RDD for labeled training data. The
// derived RDD is cached (iterations 2..N of this run reuse the live
// *CSRMatrix without touching the store), and the underlying blocks
// outlive the run as a durable pack cache.
func newPackedPlan(data *rdd.RDD[LabeledPoint], dim int) *packedPlan {
	id := data.ID()
	packed := rdd.Derive(data, func(ec *rdd.ExecContext, part int, parent func() ([]LabeledPoint, error)) ([]packedPart, error) {
		return materializePacked(ec, csrBlockKey(id, dim, part), func() (*linalg.CSRMatrix, error) {
			pts, err := parent()
			if err != nil {
				return nil, err
			}
			return PackPoints(part, dim, pts)
		})
	})
	return &packedPlan{packed: packed.Cache()}
}

// newPackedVecPlan is newPackedPlan for unlabeled (KMeans) input.
func newPackedVecPlan(points *rdd.RDD[linalg.SparseVector], dim int) *packedPlan {
	id := points.ID()
	packed := rdd.Derive(points, func(ec *rdd.ExecContext, part int, parent func() ([]linalg.SparseVector, error)) ([]packedPart, error) {
		return materializePacked(ec, csrBlockKey(id, dim, part), func() (*linalg.CSRMatrix, error) {
			xs, err := parent()
			if err != nil {
				return nil, err
			}
			return PackVectors(part, dim, xs)
		})
	})
	return &packedPlan{packed: packed.Cache()}
}

// release drops the run's live packed-partition objects from the
// executors' RDD caches. The encoded blocks stay in the block stores —
// they are the cross-run pack cache; the next run over the same data
// re-materializes them with a zero-copy decode instead of a re-pack.
func (p *packedPlan) release() {
	if p != nil {
		_ = p.packed.Unpersist()
	}
}

// rowIDPool recycles minibatch row-index scratch across iterations —
// the packed replacement for sampleRDD's fresh per-iteration
// []LabeledPoint slices.
var rowIDPool = sync.Pool{New: func() any { return new([]int32) }}

// samplePackedRows selects minibatch rows by index over a packed
// partition, replaying sampleRDD's exact RNG stream (same source seed
// per (seed, iter, partition), one Float64 draw per row in row order)
// so packed and per-point minibatches select identical points. The
// returned slice is never nil (an empty selection must not read as
// "all rows" to the kernel); return it with putSampledRows.
func samplePackedRows(m *linalg.CSRMatrix, frac float64, seed int64, iter int) *[]int32 {
	rp := rowIDPool.Get().(*[]int32)
	rows := (*rp)[:0]
	rng := rand.New(rand.NewSource(seed ^ int64(iter)*1_000_003 ^ int64(m.Part)*7_777_777))
	n := m.Rows()
	for r := 0; r < n; r++ {
		if rng.Float64() < frac {
			rows = append(rows, int32(r))
		}
	}
	*rp = rows
	return rp
}

func putSampledRows(rp *[]int32) { rowIDPool.Put(rp) }

// observeCompute records one fused map pass into the executor's
// registry: kernel latency into the map-phase histogram and the
// per-pass throughput gauge.
func observeCompute(reg *metrics.Registry, elapsed time.Duration, points float64) {
	if reg == nil {
		return
	}
	ns := elapsed.Nanoseconds()
	reg.Histogram(metrics.HistComputeMapNS).Observe(ns)
	if ns > 0 {
		reg.Gauge(metrics.GaugeComputePointsPerSec).Set(int64(points * 1e9 / float64(ns)))
	}
}

// packedGradSeqOp builds the packed seqOp for one gradient iteration:
// sample rows (when frac < 1), run the fused kernel into the gradient
// prefix, and fold loss and count into the aggregator tail exactly as
// the per-point path does. The kernel's lossSum accumulates in row
// order starting from zero and every per-point loss is non-negative,
// so acc[dim] += lossSum lands bit-for-bit where the per-point
// acc[dim] += loss chain would.
func packedGradSeqOp(kind linalg.CSRGradKind, w []float64, dim int, frac float64, seed int64, iter int) func(acc []float64, pp packedPart) []float64 {
	return func(acc []float64, pp packedPart) []float64 {
		var rows []int32
		var rp *[]int32
		if frac < 1 {
			rp = samplePackedRows(pp.M, frac, seed, iter)
			rows = *rp
			if rows == nil {
				rows = []int32{}
			}
		}
		start := time.Now()
		lossSum, count := linalg.CSRGrad(kind, pp.M, rows, w, acc[:dim], pp.Cores)
		observeCompute(pp.Reg, time.Since(start), count)
		if rp != nil {
			putSampledRows(rp)
		}
		acc[dim] += lossSum
		acc[dim+1] += count
		return acc
	}
}

// packedKMeansSeqOp builds the packed seqOp for one Lloyd iteration
// over flattened centers. Center norms are precomputed once per
// iteration with the same arithmetic sequence the scalar sqDist uses,
// so assignments and costs match the per-point path bit for bit.
func packedKMeansSeqOp(centers, cNorms []float64, k, dim int) func(acc []float64, pp packedPart) []float64 {
	return func(acc []float64, pp packedPart) []float64 {
		start := time.Now()
		linalg.CSRKMeans(pp.M, centers, cNorms, k, dim, acc, pp.Cores)
		observeCompute(pp.Reg, time.Since(start), float64(pp.M.Rows()))
		return acc
	}
}
