package mllib

// Chaos: gradient-descent training rides through real membership churn.
// An executor is killed mid-training and a replacement adopts its slot
// while the optimizer loop keeps submitting collectives; because the
// elastic retry re-runs a churn-broken aggregation whole against the
// new epoch (and the ring fallback is exact when membership is
// stable), every gradient stays exact and the model converges to the
// same quality as an undisturbed run. Runs under the race detector via
// `make test-chaos` / `make chaos-elastic`.

import (
	"fmt"
	"testing"
	"time"

	"sparker/internal/rdd"
)

func TestChaosElasticTrainingKillAndReplace(t *testing.T) {
	ctx := testContext(t, 3, 2)
	const n, dim = 400, 2
	train := trainingSet(ctx, n, dim, 6)

	// Kill one executor shortly after training starts, wait for the
	// eviction epoch, then join a replacement — all while the GD loop
	// below is submitting ring collectives.
	churn := make(chan error, 1)
	go func() {
		churn <- func() error {
			time.Sleep(10 * time.Millisecond)
			e0 := ctx.MembershipEpoch()
			if err := ctx.KillExecutor(2); err != nil {
				return err
			}
			if !ctx.AwaitReconfigured(e0, 10*time.Second) {
				return fmt.Errorf("kill never installed a new epoch")
			}
			id, err := ctx.AddExecutor("replacement")
			if err != nil {
				return err
			}
			if id != 2 {
				return fmt.Errorf("replacement adopted slot %d, want 2", id)
			}
			return nil
		}()
	}()

	m, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: dim,
		GD:          GDConfig{Iterations: 40, StepSize: 5, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatalf("training across churn: %v", err)
	}
	if err := <-churn; err != nil {
		t.Fatal(err)
	}

	pts, err := rdd.Collect(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(pts); acc < 0.9 {
		t.Fatalf("accuracy %v < 0.9 after kill-and-replace", acc)
	}
	if m.Losses[len(m.Losses)-1] >= m.Losses[0] {
		t.Fatalf("loss did not improve across churn: %v -> %v",
			m.Losses[0], m.Losses[len(m.Losses)-1])
	}
	if live := ctx.NumLiveExecutors(); live != 3 {
		t.Fatalf("live executors = %d after replace, want 3", live)
	}
}
