package mllib

import (
	"math"
	"testing"

	"sparker/internal/linalg"
)

func TestLBFGSLearnsFasterThanSGD(t *testing.T) {
	ctx := testContext(t, 3, 2)
	const n, dim = 400, 2
	train := trainingSet(ctx, n, dim, 6)

	lbfgs, err := TrainLogisticRegressionLBFGS(train, dim, LBFGSConfig{
		Iterations: 15, Strategy: StrategySplit,
	})
	if err != nil {
		t.Fatal(err)
	}
	sgd, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: dim,
		GD:          GDConfig{Iterations: 15, StepSize: 5, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	lbfgsLoss := lbfgs.Losses[len(lbfgs.Losses)-1]
	sgdLoss := sgd.Losses[len(sgd.Losses)-1]
	if lbfgsLoss > sgdLoss+1e-6 {
		t.Fatalf("L-BFGS final loss %v worse than SGD's %v after equal iterations", lbfgsLoss, sgdLoss)
	}
	pts, err := collectTrainingSet(t, train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := lbfgs.Accuracy(pts); acc < 0.9 {
		t.Fatalf("L-BFGS accuracy %v < 0.9", acc)
	}
}

func TestLBFGSMonotoneLoss(t *testing.T) {
	ctx := testContext(t, 2, 2)
	train := trainingSet(ctx, 300, 2, 4)
	m, err := TrainLogisticRegressionLBFGS(train, 2, LBFGSConfig{
		Iterations: 20, Strategy: StrategyTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Losses); i++ {
		if m.Losses[i] > m.Losses[i-1]+1e-9 {
			t.Fatalf("loss increased at iteration %d: %v -> %v", i, m.Losses[i-1], m.Losses[i])
		}
	}
}

func TestLBFGSStrategiesAgree(t *testing.T) {
	ctx := testContext(t, 3, 2)
	train := trainingSet(ctx, 250, 2, 5)
	run := func(s Strategy) *LinearModel {
		m, err := TrainLogisticRegressionLBFGS(train, 2, LBFGSConfig{Iterations: 8, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	tree := run(StrategyTree)
	split := run(StrategySplit)
	for i := range tree.Weights {
		if math.Abs(tree.Weights[i]-split.Weights[i]) > 1e-6 {
			t.Fatalf("L-BFGS weights diverge across strategies at %d: %v vs %v",
				i, tree.Weights[i], split.Weights[i])
		}
	}
}

func TestLBFGSRegularization(t *testing.T) {
	ctx := testContext(t, 2, 2)
	train := trainingSet(ctx, 200, 2, 4)
	free, err := TrainLogisticRegressionLBFGS(train, 2, LBFGSConfig{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := TrainLogisticRegressionLBFGS(train, 2, LBFGSConfig{Iterations: 20, RegParam: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if norm(reg.Weights) >= norm(free.Weights) {
		t.Fatalf("L2 regularization did not shrink weights: %v vs %v",
			norm(reg.Weights), norm(free.Weights))
	}
}

func TestLBFGSValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	train := trainingSet(ctx, 50, 2, 2)
	if _, err := TrainLogisticRegressionLBFGS(train, 0, LBFGSConfig{}); err == nil {
		t.Fatal("zero features should fail")
	}
	if _, _, err := RunLBFGS(train, LogisticGradient{}, nil, LBFGSConfig{}); err == nil {
		t.Fatal("empty initial weights should fail")
	}
}

func TestTwoLoopIdentityWithoutHistory(t *testing.T) {
	g := []float64{1, -2, 3}
	q := twoLoop(g, nil, nil, nil)
	for i := range g {
		if q[i] != g[i] {
			t.Fatalf("empty-history two-loop changed gradient: %v", q)
		}
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func collectTrainingSet(t *testing.T, r interface{ NumPartitions() int }) ([]LabeledPoint, error) {
	t.Helper()
	// trainingSet builds deterministic data; regenerate it directly.
	out := make([]LabeledPoint, 0, 400)
	for i := 0; i < 400; i++ {
		f0 := float64(i%17)/17 - 0.5
		f1 := float64(i%13)/13 - 0.5
		label := 0.0
		if f0+f1 > 0 {
			label = 1
		}
		sv, err := sparseFrom(2, f0, f1)
		if err != nil {
			return nil, err
		}
		out = append(out, LabeledPoint{Label: label, Features: sv})
	}
	return out, nil
}

func sparseFrom(dim int, f0, f1 float64) (v linalg.SparseVector, err error) {
	return linalg.NewSparse(dim, []int32{0, 1}, []float64{f0, f1})
}
