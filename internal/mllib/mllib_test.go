package mllib

import (
	"fmt"
	"math"
	"testing"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
	"sparker/internal/serde"
)

func testContext(t *testing.T, execs, cores int) *rdd.Context {
	t.Helper()
	ctx, err := rdd.NewContext(rdd.Config{
		Name:             fmt.Sprintf("ml-%s", t.Name()),
		NumExecutors:     execs,
		CoresPerExecutor: cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	return ctx
}

func sparse(t *testing.T, dim int, idx []int32, vals []float64) linalg.SparseVector {
	t.Helper()
	v, err := linalg.NewSparse(dim, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLabeledPointSerdeRoundTrip(t *testing.T) {
	p := LabeledPoint{Label: 1, Features: sparse(t, 10, []int32{2, 7}, []float64{1.5, -3})}
	b, err := serde.Encode(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := serde.Decode(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: %v", err)
	}
	gp := got.(LabeledPoint)
	if gp.Label != 1 || gp.Features.At(7) != -3 {
		t.Fatalf("roundtrip: %+v", gp)
	}
}

func TestDocumentSerdeAndValidate(t *testing.T) {
	d := Document{WordIDs: []int32{0, 5, 9}, Counts: []float64{2, 1, 4}}
	if err := d.Validate(10); err != nil {
		t.Fatal(err)
	}
	if d.TokenCount() != 7 {
		t.Fatalf("TokenCount = %v", d.TokenCount())
	}
	b, err := serde.Encode(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := serde.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gd := got.(Document)
	if gd.TokenCount() != 7 || gd.WordIDs[1] != 5 {
		t.Fatalf("roundtrip: %+v", gd)
	}
	bad := Document{WordIDs: []int32{3, 1}, Counts: []float64{1, 1}}
	if bad.Validate(10) == nil {
		t.Fatal("unsorted ids should fail validation")
	}
	bad2 := Document{WordIDs: []int32{1}, Counts: []float64{0}}
	if bad2.Validate(10) == nil {
		t.Fatal("zero count should fail validation")
	}
}

func TestLogisticGradientFiniteDifference(t *testing.T) {
	// Gradient check against numeric differentiation of the loss.
	x := sparse(t, 4, []int32{0, 2, 3}, []float64{1, -2, 0.5})
	w := []float64{0.3, -0.1, 0.2, 0.7}
	for _, label := range []float64{0, 1} {
		g := make([]float64, 4)
		LogisticGradient{}.Compute(x, label, w, g)
		const h = 1e-6
		for i := 0; i < 4; i++ {
			wp := append([]float64(nil), w...)
			wm := append([]float64(nil), w...)
			wp[i] += h
			wm[i] -= h
			lp := LogisticGradient{}.Compute(x, label, wp, make([]float64, 4))
			lm := LogisticGradient{}.Compute(x, label, wm, make([]float64, 4))
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-g[i]) > 1e-4 {
				t.Fatalf("label %v dim %d: analytic %v numeric %v", label, i, g[i], numeric)
			}
		}
	}
}

func TestHingeGradient(t *testing.T) {
	x := sparse(t, 2, []int32{0, 1}, []float64{1, 1})
	// Correctly classified with margin > 1: zero loss, zero gradient.
	w := []float64{2, 2}
	g := make([]float64, 2)
	if loss := (HingeGradient{}).Compute(x, 1, w, g); loss != 0 || g[0] != 0 {
		t.Fatalf("confident correct: loss=%v g=%v", loss, g)
	}
	// Misclassified: loss = 1 - (-1)(4) = 5 for label 0.
	g = make([]float64, 2)
	if loss := (HingeGradient{}).Compute(x, 0, w, g); math.Abs(loss-5) > 1e-12 || g[0] != 1 {
		t.Fatalf("misclassified: loss=%v g=%v", loss, g)
	}
}

func TestLeastSquaresGradient(t *testing.T) {
	x := sparse(t, 2, []int32{0}, []float64{2})
	w := []float64{3, 0}
	g := make([]float64, 2)
	loss := (LeastSquaresGradient{}).Compute(x, 1, w, g) // pred 6, diff 5
	if math.Abs(loss-12.5) > 1e-12 || math.Abs(g[0]-10) > 1e-12 {
		t.Fatalf("loss=%v g=%v", loss, g)
	}
}

func TestUpdaters(t *testing.T) {
	w := []float64{1, 1}
	g := []float64{1, -1}
	nw, reg := SimpleUpdater{}.Update(w, g, 0.5, 1, 0)
	if reg != 0 || math.Abs(nw[0]-0.5) > 1e-12 || math.Abs(nw[1]-1.5) > 1e-12 {
		t.Fatalf("SimpleUpdater: %v reg=%v", nw, reg)
	}
	// Iter 4 halves the effective step (1/sqrt(4)).
	nw, _ = SimpleUpdater{}.Update(w, g, 0.5, 4, 0)
	if math.Abs(nw[0]-0.75) > 1e-12 {
		t.Fatalf("step schedule wrong: %v", nw)
	}
	nw, reg = SquaredL2Updater{}.Update(w, g, 0.5, 1, 0.1)
	wantW0 := 1*(1-0.5*0.1) - 0.5
	if math.Abs(nw[0]-wantW0) > 1e-12 {
		t.Fatalf("SquaredL2Updater: %v", nw)
	}
	if reg <= 0 {
		t.Fatalf("reg = %v, want > 0", reg)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyTree.String() != "tree" || StrategyTreeIMM.String() != "tree+imm" || StrategySplit.String() != "split" {
		t.Fatal("Strategy strings wrong")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still print")
	}
}

// trainingSet builds a small separable dataset spread over the cluster.
func trainingSet(ctx *rdd.Context, n, dim, parts int) *rdd.RDD[LabeledPoint] {
	return rdd.Generate(ctx, parts, func(part int) ([]LabeledPoint, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]LabeledPoint, 0, hi-lo)
		for i := lo; i < hi; i++ {
			// Two gaussian-ish blobs on a deterministic lattice.
			f0 := float64(i%17)/17 - 0.5
			f1 := float64(i%13)/13 - 0.5
			label := 0.0
			if f0+f1 > 0 {
				label = 1
			}
			idx := []int32{0, 1}
			vals := []float64{f0, f1}
			sv, err := linalg.NewSparse(dim, idx, vals)
			if err != nil {
				return nil, err
			}
			out = append(out, LabeledPoint{Label: label, Features: sv})
		}
		return out, nil
	}).Cache()
}

func TestLogisticRegressionLearnsAllStrategies(t *testing.T) {
	for _, s := range []Strategy{StrategyTree, StrategyTreeIMM, StrategySplit} {
		t.Run(s.String(), func(t *testing.T) {
			ctx := testContext(t, 3, 2)
			const n, dim = 400, 2
			train := trainingSet(ctx, n, dim, 6)
			m, err := TrainLogisticRegression(train, LogisticRegressionConfig{
				NumFeatures: dim,
				GD:          GDConfig{Iterations: 30, StepSize: 5, Strategy: s},
			})
			if err != nil {
				t.Fatal(err)
			}
			pts, err := rdd.Collect(train)
			if err != nil {
				t.Fatal(err)
			}
			if acc := m.Accuracy(pts); acc < 0.9 {
				t.Fatalf("accuracy %v < 0.9 with strategy %v", acc, s)
			}
			// Loss should broadly decrease.
			if m.Losses[len(m.Losses)-1] >= m.Losses[0] {
				t.Fatalf("loss did not improve: %v -> %v", m.Losses[0], m.Losses[len(m.Losses)-1])
			}
		})
	}
}

func TestStrategiesProduceSameModel(t *testing.T) {
	ctx := testContext(t, 3, 2)
	const n, dim = 300, 2
	train := trainingSet(ctx, n, dim, 5)
	cfgFor := func(s Strategy) LogisticRegressionConfig {
		return LogisticRegressionConfig{NumFeatures: dim, GD: GDConfig{Iterations: 10, StepSize: 2, Strategy: s}}
	}
	tree, err := TrainLogisticRegression(train, cfgFor(StrategyTree))
	if err != nil {
		t.Fatal(err)
	}
	imm, err := TrainLogisticRegression(train, cfgFor(StrategyTreeIMM))
	if err != nil {
		t.Fatal(err)
	}
	split, err := TrainLogisticRegression(train, cfgFor(StrategySplit))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tree.Weights {
		if math.Abs(tree.Weights[i]-imm.Weights[i]) > 1e-8 ||
			math.Abs(tree.Weights[i]-split.Weights[i]) > 1e-8 {
			t.Fatalf("weight %d differs across strategies: tree=%v imm=%v split=%v",
				i, tree.Weights[i], imm.Weights[i], split.Weights[i])
		}
	}
}

func TestSVMLearns(t *testing.T) {
	ctx := testContext(t, 2, 2)
	const n, dim = 400, 2
	train := trainingSet(ctx, n, dim, 4)
	m, err := TrainSVM(train, SVMConfig{
		NumFeatures: dim,
		GD:          GDConfig{Iterations: 40, StepSize: 5, Strategy: StrategySplit},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := rdd.Collect(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(pts); acc < 0.9 {
		t.Fatalf("SVM accuracy %v < 0.9", acc)
	}
	if m.Kind() != "svm" {
		t.Fatalf("Kind = %q", m.Kind())
	}
}

func TestMiniBatchSamplingDeterministic(t *testing.T) {
	ctx := testContext(t, 2, 1)
	train := trainingSet(ctx, 200, 2, 4)
	cfg := LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 5, StepSize: 1, MiniBatchFraction: 0.5, Seed: 11},
	}
	a, err := TrainLogisticRegression(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLogisticRegression(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed should give identical mini-batch runs")
		}
	}
}

func TestConvergenceTolStopsEarly(t *testing.T) {
	ctx := testContext(t, 2, 1)
	train := trainingSet(ctx, 100, 2, 2)
	m, err := TrainLogisticRegression(train, LogisticRegressionConfig{
		NumFeatures: 2,
		GD:          GDConfig{Iterations: 100, StepSize: 0.01, ConvergenceTol: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Losses) >= 100 {
		t.Fatalf("ran all %d iterations despite loose tolerance", len(m.Losses))
	}
}

func TestGDValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	train := trainingSet(ctx, 10, 2, 2)
	if _, err := TrainLogisticRegression(train, LogisticRegressionConfig{NumFeatures: 0}); err == nil {
		t.Fatal("zero features should fail")
	}
	if _, _, err := RunGradientDescent(train, LogisticGradient{}, SimpleUpdater{}, nil, GDConfig{}); err == nil {
		t.Fatal("empty initial weights should fail")
	}
	if _, err := AggregateF64(train, 4, func(a []float64, p LabeledPoint) []float64 { return a }, Strategy(42), 2, 1); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

func TestPredictThresholds(t *testing.T) {
	lr := &LinearModel{Weights: []float64{1}, Threshold: 0.5, kind: "logistic-regression"}
	x := linalg.SparseVector{Dim: 1, Indices: []int32{0}, Values: []float64{3}}
	if lr.Predict(x) != 1 {
		t.Fatal("positive margin should predict 1")
	}
	if p := lr.PredictProb(x); p < 0.9 {
		t.Fatalf("prob = %v", p)
	}
	svm := &LinearModel{Weights: []float64{-1}, Threshold: 0, kind: "svm"}
	if svm.Predict(x) != 0 {
		t.Fatal("negative margin should predict 0")
	}
}

func TestDigamma(t *testing.T) {
	// Reference values (Abramowitz & Stegun / SciPy).
	cases := []struct{ x, want float64 }{
		{1, -0.5772156649015329},
		{0.5, -1.9635100260214235},
		{2, 0.42278433509846713},
		{10, 2.251752589066721},
		{100, 4.600161852738087},
	}
	for _, c := range cases {
		if got := digamma(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("digamma(%v) = %.15f, want %.15f", c.x, got, c.want)
		}
	}
	// Recurrence property ψ(x+1) = ψ(x) + 1/x.
	for _, x := range []float64{0.3, 1.7, 5.5, 42} {
		if diff := digamma(x+1) - digamma(x) - 1/x; math.Abs(diff) > 1e-10 {
			t.Errorf("recurrence violated at %v: %v", x, diff)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"tree": StrategyTree, "imm": StrategyTreeIMM, "tree+imm": StrategyTreeIMM,
		"split": StrategySplit, "allreduce": StrategyAllReduce,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("unknown strategy should fail")
	}
}
