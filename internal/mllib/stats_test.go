package mllib

import (
	"math"
	"testing"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

func TestColumnStats(t *testing.T) {
	ctx := testContext(t, 2, 2)
	// Feature 0: values 1..8; feature 1: constant 5; feature 2: zeros.
	pts := make([]LabeledPoint, 8)
	for i := range pts {
		sv, err := linalg.NewSparse(3, []int32{0, 1}, []float64{float64(i + 1), 5})
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = LabeledPoint{Features: sv}
	}
	data := rdd.FromSlice(ctx, pts, 4)
	for _, s := range []Strategy{StrategyTree, StrategySplit} {
		sum, err := ColumnStats(data, 3, s, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Count != 8 {
			t.Fatalf("[%v] Count = %d", s, sum.Count)
		}
		if math.Abs(sum.Mean[0]-4.5) > 1e-12 || sum.Mean[1] != 5 || sum.Mean[2] != 0 {
			t.Fatalf("[%v] Mean = %v", s, sum.Mean)
		}
		// Population variance of 1..8 = 5.25.
		if math.Abs(sum.Variance[0]-5.25) > 1e-9 {
			t.Fatalf("[%v] Variance[0] = %v", s, sum.Variance[0])
		}
		if sum.Variance[1] > 1e-9 || sum.Variance[2] != 0 {
			t.Fatalf("[%v] Variance = %v", s, sum.Variance)
		}
		if sum.NumNonzeros[0] != 8 || sum.NumNonzeros[1] != 8 || sum.NumNonzeros[2] != 0 {
			t.Fatalf("[%v] NNZ = %v", s, sum.NumNonzeros)
		}
	}
}

func TestColumnStatsValidation(t *testing.T) {
	ctx := testContext(t, 2, 1)
	empty := rdd.FromSlice(ctx, []LabeledPoint{}, 2)
	if _, err := ColumnStats(empty, 3, StrategyTree, 1); err == nil {
		t.Fatal("empty dataset should fail")
	}
	if _, err := ColumnStats(empty, 0, StrategyTree, 1); err == nil {
		t.Fatal("zero features should fail")
	}
}

func TestStandardScaler(t *testing.T) {
	s := &ColumnSummary{
		Mean:     []float64{10, 0, 3},
		Variance: []float64{4, 0, 1}, // stddev 2, (zero), 1
	}
	sc := NewStandardScaler(s)
	got := sc.TransformDense([]float64{14, 7, 3})
	want := []float64{2, 7, 0} // (14-10)/2, zero-variance untouched-scale, (3-3)/1
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Transform = %v, want %v", got, want)
		}
	}
}

func TestScaledFeaturesTrainBetter(t *testing.T) {
	// Standardization makes badly-scaled features trainable: feature 1
	// is 1000× larger than feature 0, which stalls plain SGD.
	ctx := testContext(t, 2, 2)
	const n, dim = 300, 2
	raw := make([]LabeledPoint, n)
	for i := 0; i < n; i++ {
		f0 := float64(i%17)/17 - 0.5
		f1 := 1000 * (float64(i%13)/13 - 0.5)
		label := 0.0
		if f0+f1/1000 > 0 {
			label = 1
		}
		sv, err := linalg.NewSparse(dim, []int32{0, 1}, []float64{f0, f1})
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = LabeledPoint{Label: label, Features: sv}
	}
	data := rdd.FromSlice(ctx, raw, 4).Cache()
	summary, err := ColumnStats(data, dim, StrategySplit, 2)
	if err != nil {
		t.Fatal(err)
	}
	scaler := NewStandardScaler(summary)
	scaled := rdd.Map(data, func(p LabeledPoint) LabeledPoint {
		dense := scaler.TransformDense(p.Features.Dense())
		idx := []int32{0, 1}
		sv, _ := linalg.NewSparse(dim, idx, dense)
		return LabeledPoint{Label: p.Label, Features: sv}
	}).Cache()

	cfg := LogisticRegressionConfig{NumFeatures: dim, GD: GDConfig{Iterations: 20, StepSize: 1, Strategy: StrategySplit}}
	rawModel, err := TrainLogisticRegression(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scaledModel, err := TrainLogisticRegression(scaled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rawLoss := rawModel.Losses[len(rawModel.Losses)-1]
	scaledLoss := scaledModel.Losses[len(scaledModel.Losses)-1]
	if scaledLoss >= rawLoss {
		t.Fatalf("scaling did not help: raw %v vs scaled %v", rawLoss, scaledLoss)
	}
}
