package mllib

import (
	"context"
	"fmt"
	"math"

	"sparker/internal/linalg"
	"sparker/internal/rdd"
)

// KMeansConfig configures TrainKMeans.
type KMeansConfig struct {
	// K is the cluster count.
	K int
	// NumFeatures is the point dimensionality.
	NumFeatures int
	// Iterations caps Lloyd iterations (default 20).
	Iterations int
	// ConvergenceTol stops when no center moves more than this L2
	// distance (default 1e-4).
	ConvergenceTol float64
	// Strategy, Depth, Parallelism select the aggregation path — the
	// per-iteration aggregator is K×dim sums + K counts + cost, another
	// big flat vector that split aggregation slices.
	Strategy    Strategy
	Depth       int
	Parallelism int
	// Tenant charges the run's aggregation stages to the named
	// scheduler fair-share account (empty: default tenant).
	Tenant string
	// Ctx, when non-nil, bounds the run: each Lloyd iteration checks
	// it and the per-iteration aggregations derive from it, so
	// cancelling Ctx aborts training promptly with context.Canceled.
	Ctx context.Context
	// Packed selects the CSR compute plane (default PackedAuto, which
	// is always packed for KMeans — the nearest-center kernel covers
	// every configuration). See GDConfig.Packed.
	Packed PackedMode
}

func (c *KMeansConfig) fill() error {
	if c.K < 1 || c.NumFeatures < 1 {
		return fmt.Errorf("mllib: KMeans needs positive K and NumFeatures (got %d, %d)", c.K, c.NumFeatures)
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.ConvergenceTol == 0 {
		c.ConvergenceTol = 1e-4
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	return nil
}

// KMeansModel is a trained clustering.
type KMeansModel struct {
	// Centers are the K cluster centers.
	Centers [][]float64
	// CostHistory is the per-iteration within-cluster sum of squares.
	CostHistory []float64
}

// NearestCenter returns the nearest center's index.
func (m *KMeansModel) NearestCenter(x linalg.SparseVector) int {
	best, bestDist := 0, math.Inf(1)
	for c, center := range m.Centers {
		d := sqDist(center, x)
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Predict returns the nearest center's index as a float64, satisfying
// the unified Model interface (cluster id as float64). Callers that
// want the index as an int use NearestCenter.
func (m *KMeansModel) Predict(x linalg.SparseVector) float64 {
	return float64(m.NearestCenter(x))
}

// PredictBatch fills out[i] with the cluster id of xs[i]; len(out)
// must equal len(xs). Part of the unified Model interface.
func (m *KMeansModel) PredictBatch(xs []linalg.SparseVector, out []float64) {
	for i, x := range xs {
		out[i] = float64(m.NearestCenter(x))
	}
}

// Kind identifies the model type for the unified Model interface.
func (m *KMeansModel) Kind() string { return "kmeans" }

// NumFeatures returns the point dimensionality the model expects.
func (m *KMeansModel) NumFeatures() int {
	if len(m.Centers) == 0 {
		return 0
	}
	return len(m.Centers[0])
}

// Cost returns the final training cost.
func (m *KMeansModel) Cost() float64 {
	if len(m.CostHistory) == 0 {
		return math.NaN()
	}
	return m.CostHistory[len(m.CostHistory)-1]
}

// sqDist computes ||c - x||² for dense c, sparse x.
func sqDist(center []float64, x linalg.SparseVector) float64 {
	var cNorm float64
	for _, v := range center {
		cNorm += v * v
	}
	var xNorm, dot float64
	for i, ix := range x.Indices {
		v := x.Values[i]
		xNorm += v * v
		dot += center[ix] * v
	}
	d := cNorm - 2*dot + xNorm
	if d < 0 {
		d = 0
	}
	return d
}

// TrainKMeans runs Lloyd's algorithm: one distributed aggregation per
// iteration computes every cluster's point sum, count and the total
// cost against the current centers.
func TrainKMeans(points *rdd.RDD[linalg.SparseVector], cfg KMeansConfig) (*KMeansModel, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, cfg.NumFeatures

	// Initialize centers from the first K points (deterministic; the
	// callers shuffle their data or accept seeding quality).
	seedPts, err := rdd.Take(points, k)
	if err != nil {
		return nil, err
	}
	if len(seedPts) < k {
		return nil, fmt.Errorf("mllib: only %d points for K=%d", len(seedPts), k)
	}
	centers := make([][]float64, k)
	for i, p := range seedPts {
		if p.Dim != dim {
			return nil, fmt.Errorf("mllib: point dim %d != NumFeatures %d", p.Dim, dim)
		}
		centers[i] = p.Dense()
	}

	model := &KMeansModel{Centers: centers}
	// Aggregator layout: [k*dim) sums, [k*dim, k*dim+k) counts, last cost.
	aggDim := k*dim + k + 1

	tr, root, tctx := startTrainSpan(points.Context(), "kmeans", cfg.Strategy, cfg.Ctx)
	defer func() { root.End() }()

	var plan *packedPlan
	if cfg.Packed != PackedOff {
		plan = newPackedVecPlan(points, dim)
		defer plan.release()
	}
	root.SetAttr("packed", fmt.Sprint(plan != nil))

	for iter := 0; iter < cfg.Iterations; iter++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				root.SetAttr("error", err.Error())
				return nil, fmt.Errorf("mllib: kmeans iteration %d: %w", iter, err)
			}
		}
		snapshot := make([][]float64, k)
		for i, c := range centers {
			snapshot[i] = append([]float64(nil), c...)
		}
		it, ictx := startIteration(tr, root, tctx, iter+1)
		var agg []float64
		var err error
		if plan != nil {
			// Packed plane: flatten the snapshot, precompute center norms
			// once per iteration (same arithmetic sequence as sqDist —
			// assignments stay bitwise identical), fuse per partition.
			flat := make([]float64, k*dim)
			for i, c := range snapshot {
				copy(flat[i*dim:(i+1)*dim], c)
			}
			cNorms := make([]float64, k)
			linalg.CSRKMeansCenterNorms(flat, k, dim, cNorms)
			agg, err = AggregateF64Ctx(ictx, plan.packed, aggDim,
				packedKMeansSeqOp(flat, cNorms, k, dim),
				cfg.Strategy, cfg.Depth, cfg.Parallelism, tenantOptions(cfg.Tenant)...)
		} else {
			agg, err = AggregateF64Ctx(ictx, points, aggDim, func(acc []float64, x linalg.SparseVector) []float64 {
				best, bestDist := 0, math.Inf(1)
				for c, center := range snapshot {
					if d := sqDist(center, x); d < bestDist {
						best, bestDist = c, d
					}
				}
				linalg.Axpy(1, x, acc[best*dim:(best+1)*dim])
				acc[k*dim+best]++
				acc[k*dim+k] += bestDist
				return acc
			}, cfg.Strategy, cfg.Depth, cfg.Parallelism, tenantOptions(cfg.Tenant)...)
		}
		if err != nil {
			it.EndErr(err)
			root.SetAttr("error", err.Error())
			return nil, fmt.Errorf("mllib: kmeans iteration %d: %w", iter, err)
		}
		it.End()
		model.CostHistory = append(model.CostHistory, agg[k*dim+k])

		moved := 0.0
		for c := 0; c < k; c++ {
			count := agg[k*dim+c]
			if count == 0 {
				continue // keep the empty cluster's center
			}
			var shift float64
			for j := 0; j < dim; j++ {
				nv := agg[c*dim+j] / count
				d := nv - centers[c][j]
				shift += d * d
				centers[c][j] = nv
			}
			if s := math.Sqrt(shift); s > moved {
				moved = s
			}
		}
		if moved < cfg.ConvergenceTol {
			break
		}
	}
	return model, nil
}
