package vclock

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := New()
	var end time.Duration
	e.Go(func(p *Proc) {
		p.Sleep(3 * time.Second)
		p.Sleep(2 * time.Second)
		end = p.Now()
	})
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 5*time.Second || final != 5*time.Second {
		t.Fatalf("end=%v final=%v, want 5s", end, final)
	}
}

func TestSleepIsVirtualNotWall(t *testing.T) {
	e := New()
	e.Go(func(p *Proc) { p.Sleep(10 * time.Hour) })
	start := time.Now()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("10 simulated hours took %v wall time", wall)
	}
}

func TestConcurrentProcsInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Go(func(p *Proc) {
				p.Sleep(time.Duration(5-i) * time.Millisecond)
				order = append(order, i) // wakeups are serialized by the engine
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run()
	// Distinct wake times, so append order equals wake order.
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("order = %v, want %v", a, want)
		}
	}
}

func TestMailboxDeliversAtTime(t *testing.T) {
	e := New()
	mb := NewMailbox[string](e)
	var recvAt time.Duration
	var got string
	e.Go(func(p *Proc) {
		got = mb.Recv(p)
		recvAt = p.Now()
	})
	e.Go(func(p *Proc) {
		p.Sleep(time.Second)
		mb.PutAt(p.Now()+500*time.Millisecond, "msg") // in flight 500ms
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "msg" || recvAt != 1500*time.Millisecond {
		t.Fatalf("got %q at %v, want msg at 1.5s", got, recvAt)
	}
}

func TestMailboxOrdering(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e)
	var got []int
	e.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			mb.PutAt(p.Now(), i)
			p.Sleep(time.Millisecond)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e)
	e.Go(func(p *Proc) { mb.Recv(p) }) // nobody sends
	if _, err := e.Run(); err == nil {
		t.Fatal("deadlock should be reported")
	}
}

func TestResourceFIFOSerializes(t *testing.T) {
	e := New()
	r := NewResource(e, 100) // 100 units/sec
	done := make([]time.Duration, 2)
	g := NewGroup(e)
	for i := 0; i < 2; i++ {
		i := i
		g.Go(func(p *Proc) {
			done[i] = r.Use(p, 100) // 1 second each
		})
	}
	e.Go(func(p *Proc) { g.Wait(p) })
	final, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Two 1-second jobs through one resource: total 2s, one finishes at
	// 1s and the other at 2s.
	if final != 2*time.Second {
		t.Fatalf("final = %v, want 2s", final)
	}
	lo, hi := done[0], done[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != time.Second || hi != 2*time.Second {
		t.Fatalf("completions %v, want 1s and 2s", done)
	}
}

func TestResourceReserveAt(t *testing.T) {
	e := New()
	r := NewResource(e, 10)
	// Reserve 20 units at t=0 → done 2s; next 10 units at t=1s queue
	// behind → done 3s.
	if got := r.ReserveAt(0, 20); got != 2*time.Second {
		t.Fatalf("first reserve = %v", got)
	}
	if got := r.ReserveAt(time.Second, 10); got != 3*time.Second {
		t.Fatalf("queued reserve = %v", got)
	}
	// Idle gap: reservation far in the future starts fresh.
	if got := r.ReserveAt(10*time.Second, 10); got != 11*time.Second {
		t.Fatalf("idle reserve = %v", got)
	}
}

func TestGroupWait(t *testing.T) {
	e := New()
	var after time.Duration
	e.Go(func(p *Proc) {
		g := NewGroup(e)
		for i := 1; i <= 3; i++ {
			i := i
			g.Go(func(q *Proc) { q.Sleep(time.Duration(i) * time.Second) })
		}
		g.Wait(p)
		after = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 3*time.Second {
		t.Fatalf("Wait returned at %v, want 3s", after)
	}
}

func TestGroupWaitEmpty(t *testing.T) {
	e := New()
	e.Go(func(p *Proc) {
		g := NewGroup(e)
		g.Wait(p) // must not block
		p.Sleep(time.Millisecond)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClockMonotonic(t *testing.T) {
	// Property: however sleeps interleave, each process observes
	// non-decreasing time and the final time equals the max end time.
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 12 {
			delays = delays[:12]
		}
		e := New()
		var max time.Duration
		ok := atomic.Bool{}
		ok.Store(true)
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			if d > max {
				max = d
			}
			e.Go(func(p *Proc) {
				t0 := p.Now()
				p.Sleep(d / 2)
				t1 := p.Now()
				p.Sleep(d - d/2)
				t2 := p.Now()
				if t1 < t0 || t2 < t1 || t2 != d {
					ok.Store(false)
				}
			})
		}
		final, err := e.Run()
		return err == nil && ok.Load() && final == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickResourceThroughput(t *testing.T) {
	// Property: pushing total N units through a rate-R resource from
	// concurrent processes takes exactly N/R once saturated.
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 10 {
			sizes = sizes[:10]
		}
		e := New()
		r := NewResource(e, 1000)
		var total float64
		g := NewGroup(e)
		for _, s := range sizes {
			n := float64(s) + 1
			total += n
			g.Go(func(p *Proc) { r.Use(p, n) })
		}
		e.Go(func(p *Proc) { g.Wait(p) })
		final, err := e.Run()
		if err != nil {
			return false
		}
		want := time.Duration(total / 1000 * float64(time.Second))
		diff := final - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Duration(len(sizes))*time.Nanosecond+time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
