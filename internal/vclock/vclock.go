// Package vclock is a process-oriented discrete-event simulation
// engine: simulated processes run as goroutines against a virtual
// clock, blocking on Sleep, mailbox receives and FIFO resources. The
// engine advances time only when every live process is blocked, so
// simulated time is deterministic regardless of host scheduling.
//
// The sim layer uses it to replay Sparker's communication schedules
// (ring reduce-scatter on the PDR, treeAggregate's block fetches, MPI
// collectives) at paper scale — 10 nodes × 960 cores — in milliseconds
// of host time.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Engine owns the virtual clock and the run queue.
type Engine struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	runnable int
	live     int
	events   eventHeap
	seq      int64
	failure  error
}

// New returns a stopped engine at time zero.
func New() *Engine {
	e := &Engine{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Proc is the handle a simulated process uses to interact with time.
type Proc struct {
	e *Engine
}

type event struct {
	at   time.Duration
	seq  int64
	wake chan struct{}
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h eventHeap) peek() event   { return h[0] }

// Go spawns a simulated process. It may be called before Run or from
// inside another process. The new process does not start running
// immediately: it is scheduled through the event queue, so exactly one
// process executes at a time and every run of the same simulation is
// deterministic.
func (e *Engine) Go(f func(p *Proc)) {
	start := make(chan struct{})
	e.mu.Lock()
	e.live++
	e.seq++
	heap.Push(&e.events, event{at: e.now, seq: e.seq, wake: start})
	e.cond.Broadcast()
	e.mu.Unlock()
	go func() {
		<-start
		defer func() {
			e.mu.Lock()
			e.live--
			e.runnable--
			e.cond.Broadcast()
			e.mu.Unlock()
		}()
		f(&Proc{e: e})
	}()
}

// Run drives the simulation until every process has finished. It
// returns the final virtual time, or an error on deadlock (all
// processes blocked with no pending events).
func (e *Engine) Run() (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for e.runnable > 0 {
			e.cond.Wait()
		}
		if e.failure != nil {
			return e.now, e.failure
		}
		if e.live == 0 {
			return e.now, nil
		}
		if len(e.events) == 0 {
			e.failure = fmt.Errorf("vclock: deadlock at %v: %d processes blocked with no pending events", e.now, e.live)
			e.cond.Broadcast()
			return e.now, e.failure
		}
		// Advance to the earliest event and wake exactly one process.
		// Same-timestamp events wake in schedule order (seq), which
		// keeps resource FIFO ordering — and therefore every simulated
		// duration — deterministic across runs.
		ev := heap.Pop(&e.events).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		e.runnable++
		close(ev.wake)
	}
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration {
	p.e.mu.Lock()
	defer p.e.mu.Unlock()
	return p.e.now
}

// Sleep suspends the process for virtual duration d (clamped at 0).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.mu.Lock()
	wake := p.e.schedule(p.e.now + d)
	p.e.block()
	p.e.mu.Unlock()
	<-wake
}

// sleepUntil suspends until absolute virtual time t.
func (p *Proc) sleepUntil(t time.Duration) {
	p.e.mu.Lock()
	if t <= p.e.now {
		p.e.mu.Unlock()
		return
	}
	wake := p.e.schedule(t)
	p.e.block()
	p.e.mu.Unlock()
	<-wake
}

// schedule registers a wake-up at time t. Caller holds e.mu.
func (e *Engine) schedule(t time.Duration) chan struct{} {
	wake := make(chan struct{})
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, wake: wake})
	return wake
}

// block marks the calling process as no longer runnable. Caller holds
// e.mu.
func (e *Engine) block() {
	e.runnable--
	if e.runnable == 0 {
		e.cond.Broadcast()
	}
}

// wakeAtNow schedules w to be woken at the current virtual time,
// through the event queue so wake order stays deterministic.
func (e *Engine) wakeAtNow(w chan struct{}) {
	e.mu.Lock()
	e.seq++
	heap.Push(&e.events, event{at: e.now, seq: e.seq, wake: w})
	e.cond.Broadcast()
	e.mu.Unlock()
}

// --- mailbox -----------------------------------------------------------

// Mailbox is an unbounded point-to-point message queue between
// simulated processes. Each message carries the virtual time at which
// it becomes visible to the receiver.
type Mailbox[T any] struct {
	e    *Engine
	mu   sync.Mutex
	msgs []timedMsg[T]
	wait chan struct{} // non-nil while a receiver is parked
}

type timedMsg[T any] struct {
	at  time.Duration
	val T
}

// NewMailbox creates a mailbox bound to the engine.
func NewMailbox[T any](e *Engine) *Mailbox[T] {
	return &Mailbox[T]{e: e}
}

// PutAt delivers val at virtual time `at` (which must not precede the
// sender's current time; messages become receivable in insertion
// order). It never blocks the sender.
func (m *Mailbox[T]) PutAt(at time.Duration, val T) {
	m.mu.Lock()
	m.msgs = append(m.msgs, timedMsg[T]{at: at, val: val})
	w := m.wait
	m.wait = nil
	m.mu.Unlock()
	if w != nil {
		m.e.wakeAtNow(w)
	}
}

// Recv blocks the process until a message is available, then advances
// the clock to the message's visibility time if needed and returns it.
// One receiver at a time.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for {
		m.mu.Lock()
		if len(m.msgs) > 0 {
			msg := m.msgs[0]
			m.msgs = m.msgs[1:]
			m.mu.Unlock()
			p.sleepUntil(msg.at)
			return msg.val
		}
		if m.wait != nil {
			m.mu.Unlock()
			panic("vclock: concurrent receivers on one mailbox")
		}
		w := make(chan struct{})
		m.wait = w
		m.mu.Unlock()

		p.e.mu.Lock()
		p.e.block()
		p.e.mu.Unlock()
		<-w
	}
}

// --- FIFO resource -------------------------------------------------------

// Resource models a serially shared facility with a rate — a NIC, a
// disk, a driver thread. Acquisitions queue FIFO in virtual time: a
// request of n units issued at time t completes at
// max(t, previousFree) + n/rate.
type Resource struct {
	e    *Engine
	mu   sync.Mutex
	free time.Duration
	rate float64 // units per second
}

// NewResource creates a resource processing rate units per second.
func NewResource(e *Engine, rate float64) *Resource {
	if rate <= 0 {
		panic("vclock: resource rate must be positive")
	}
	return &Resource{e: e, rate: rate}
}

// Use blocks the process while the resource serves n units, FIFO
// ordered. It returns the completion time.
func (r *Resource) Use(p *Proc, n float64) time.Duration {
	d := time.Duration(n / r.rate * float64(time.Second))
	r.mu.Lock()
	now := p.Now()
	start := r.free
	if now > start {
		start = now
	}
	done := start + d
	r.free = done
	r.mu.Unlock()
	p.sleepUntil(done)
	return done
}

// ReserveAt books n units starting no earlier than t without blocking,
// returning the completion time. Used to model store-and-forward hops
// that the sending process does not wait for.
func (r *Resource) ReserveAt(t time.Duration, n float64) time.Duration {
	d := time.Duration(n / r.rate * float64(time.Second))
	r.mu.Lock()
	start := r.free
	if t > start {
		start = t
	}
	done := start + d
	r.free = done
	r.mu.Unlock()
	return done
}

// --- WaitGroup ----------------------------------------------------------

// Group waits for a set of spawned simulated processes, like
// sync.WaitGroup but deadlock-aware: the waiting process blocks in
// virtual time.
type Group struct {
	e    *Engine
	mu   sync.Mutex
	n    int
	wait chan struct{}
}

// NewGroup creates an empty group.
func NewGroup(e *Engine) *Group { return &Group{e: e} }

// Go runs f as a new simulated process tracked by the group.
func (g *Group) Go(f func(p *Proc)) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.e.Go(func(p *Proc) {
		defer g.done()
		f(p)
	})
}

func (g *Group) done() {
	g.mu.Lock()
	g.n--
	var w chan struct{}
	if g.n == 0 {
		w = g.wait
		g.wait = nil
	}
	g.mu.Unlock()
	if w != nil {
		g.e.wakeAtNow(w)
	}
}

// Wait blocks the calling process until every tracked process exits.
func (g *Group) Wait(p *Proc) {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return
	}
	if g.wait != nil {
		g.mu.Unlock()
		panic("vclock: concurrent Group.Wait")
	}
	w := make(chan struct{})
	g.wait = w
	g.mu.Unlock()

	p.e.mu.Lock()
	p.e.block()
	p.e.mu.Unlock()
	<-w
}
