// Package comm implements Sparker's scalable communicator: direct
// inter-executor messaging arranged as a parallel directed ring (PDR).
//
// Each executor owns an Endpoint with a unique rank in [0, N). Executor
// i can send to its next neighbor ((i+1) mod N) and receive from its
// previous neighbor ((i-1+N) mod N). P parallel channels (independent
// connections) are established between each pair of ring neighbors so
// that P threads can drive reduce-scatter concurrently and saturate the
// link — the paper's Figure 10. General point-to-point send/recv is
// also provided for the latency/throughput micro-benchmarks (Figures
// 12–13) and for the recursive-halving/pairwise MPI baselines.
package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// Endpoint is one communicator participant.
type Endpoint struct {
	group string
	rank  int
	size  int
	net   transport.Network
	lis   transport.Listener

	mu         sync.Mutex
	cond       *sync.Cond
	inbound    map[connKey]transport.Conn  // accepted, keyed by (src, channel)
	dialed     map[connKey]transport.Conn  // dialed, keyed by (dst, channel)
	senders    map[connKey]*sender         // persistent sender goroutines
	receivers  map[connKey]*receiver       // cancellable-receive state
	handshakes map[transport.Conn]struct{} // accepted, header not yet read
	closed     bool

	acceptDone chan struct{}
	closeCh    chan struct{} // closed by Close; unblocks receiver pumps
	sendWG     sync.WaitGroup
	recvWG     sync.WaitGroup

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	msgsSent      atomic.Int64
	msgsReceived  atomic.Int64

	// queueGauge, when set, tracks the total mailbox depth across this
	// endpoint's senders (messages enqueued, not yet written). Atomic so
	// SetMetrics is safe against concurrent traffic; nil means
	// uninstrumented and costs one pointer load per enqueue.
	queueGauge atomic.Pointer[metrics.Gauge]
}

// SetMetrics wires the endpoint's instruments into reg (the owning
// executor's registry): the sender queue-depth gauge. Safe to call at
// any time; nil reg disables.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) {
	e.queueGauge.Store(reg.Gauge(metrics.GaugeSendQueue))
}

// Stats is a snapshot of an endpoint's traffic counters.
type Stats struct {
	BytesSent, BytesReceived int64
	MsgsSent, MsgsReceived   int64
}

// Stats returns the endpoint's cumulative traffic counters — the
// observable for bandwidth-optimality checks (a ring reduce-scatter
// moves exactly (N-1)/N of the aggregator per rank).
func (e *Endpoint) Stats() Stats {
	return Stats{
		BytesSent:     e.bytesSent.Load(),
		BytesReceived: e.bytesReceived.Load(),
		MsgsSent:      e.msgsSent.Load(),
		MsgsReceived:  e.msgsReceived.Load(),
	}
}

// OpenConns reports the endpoint's live connection counts (accepted
// inbound, dialed outbound) — the wiring view /debug/sparker/topology
// renders next to the traffic counters.
func (e *Endpoint) OpenConns() (inbound, outbound int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbound), len(e.dialed)
}

type connKey struct {
	peer    int
	channel int
}

// addrOf is the listening address of rank r in group g.
func addrOf(g string, r int) transport.Addr {
	return transport.Addr(fmt.Sprintf("comm/%s/%d", g, r))
}

// NewEndpoint creates the endpoint for rank within a size-member group
// and starts listening. All members must share the same net and group
// name. Ranks must be unique.
func NewEndpoint(net transport.Network, group string, rank, size int) (*Endpoint, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: invalid rank %d of %d", rank, size)
	}
	lis, err := net.Listen(addrOf(group, rank))
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		group:      group,
		rank:       rank,
		size:       size,
		net:        net,
		lis:        lis,
		inbound:    map[connKey]transport.Conn{},
		dialed:     map[connKey]transport.Conn{},
		senders:    map[connKey]*sender{},
		receivers:  map[connKey]*receiver{},
		handshakes: map[transport.Conn]struct{}{},
		acceptDone: make(chan struct{}),
		closeCh:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.acceptLoop()
	return e, nil
}

// Rank returns this endpoint's ring position.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the number of group members.
func (e *Endpoint) Size() int { return e.size }

// Next returns the rank of the next ring neighbor.
func (e *Endpoint) Next() int { return (e.rank + 1) % e.size }

// Prev returns the rank of the previous ring neighbor.
func (e *Endpoint) Prev() int { return (e.rank - 1 + e.size) % e.size }

func (e *Endpoint) acceptLoop() {
	defer close(e.acceptDone)
	for {
		c, err := e.lis.Accept()
		if err != nil {
			return
		}
		go func(c transport.Conn) {
			// Track the conn until its header arrives so Close can sever
			// a handshake that never completes (a peer that dials and then
			// dies would otherwise pin this goroutine in Recv forever).
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				c.Close()
				return
			}
			e.handshakes[c] = struct{}{}
			e.mu.Unlock()
			hdr, err := c.Recv()
			e.mu.Lock()
			delete(e.handshakes, c)
			if err != nil || len(hdr) < 8 || e.closed {
				e.mu.Unlock()
				c.Close()
				return
			}
			src := int(int32(binary.LittleEndian.Uint32(hdr)))
			ch := int(int32(binary.LittleEndian.Uint32(hdr[4:])))
			e.inbound[connKey{src, ch}] = c
			e.cond.Broadcast()
			e.mu.Unlock()
		}(c)
	}
}

// dial returns (establishing if needed) the outbound connection to peer
// on the given channel.
func (e *Endpoint) dial(peer, channel int) (transport.Conn, error) {
	key := connKey{peer, channel}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if c, ok := e.dialed[key]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	c, err := e.net.Dial(addrOf(e.group, peer))
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(int32(e.rank)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(channel)))
	if err := c.Send(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return nil, transport.ErrClosed
	}
	if prev, ok := e.dialed[key]; ok {
		// Lost a benign race; keep the first connection.
		c.Close()
		return prev, nil
	}
	e.dialed[key] = c
	return c, nil
}

// senderFor returns (lazily creating) the persistent sender goroutine
// for (peer, channel).
func (e *Endpoint) senderFor(peer, channel int) (*sender, error) {
	key := connKey{peer, channel}
	e.mu.Lock()
	if s, ok := e.senders[key]; ok {
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()

	c, err := e.dial(peer, channel)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, transport.ErrClosed
	}
	if s, ok := e.senders[key]; ok {
		return s, nil
	}
	s := newSender(e, c)
	e.senders[key] = s
	e.sendWG.Add(1)
	go s.run()
	return s, nil
}

// doneChans recycles the single-use completion channels SendTo waits
// on, so synchronous sends stay allocation-free. Channels are
// pointer-shaped, so boxing one in the pool's interface does not
// allocate.
var doneChans = sync.Pool{New: func() any { return make(chan error, 1) }}

// SendTo transmits b to peer on the given parallel channel and waits
// for the write to complete. b is handed to the transport (on retaining
// transports the receiver is given the very slice), so the caller must
// not reuse or release it — but the comm layer never recycles b into
// the shared wire pool, so a caller-owned buffer can never alias pooled
// traffic even if the caller does reuse it. Hot paths that want the
// buffer recycled draw it from GetBuffer and use SendToAsync. Sends on
// the same (peer, channel) pair are written in enqueue order; distinct
// pairs proceed concurrently on their own persistent sender goroutines.
func (e *Endpoint) SendTo(peer, channel int, b []byte) error {
	s, err := e.senderFor(peer, channel)
	if err != nil {
		return e.peerError("send", peer, err)
	}
	done := doneChans.Get().(chan error)
	s.enqueue(b, false, done)
	err = <-done
	doneChans.Put(done)
	return e.peerError("send", peer, err)
}

// SendToAsync enqueues b on the (peer, channel) persistent sender and
// returns without waiting for the write; exactly one result — including
// setup failures — is later delivered on done, which must have capacity
// >= 1. When the sender's mailbox is full (a producer far ahead of the
// wire) the enqueue itself blocks until the sender drains: bounded
// back-pressure, not unbounded buffering. Callers that cap their own
// in-flight sends (the collectives keep at most two per channel) never
// hit the bound.
//
// This is the pool-recycling path: b must be exclusively owned by the
// caller — drawn from GetBuffer, or a private allocation nothing else
// references — because ownership transfers to the comm layer at the
// call and b re-enters the shared wire pool once the transport is done
// with it (after the write on non-retaining transports such as TCP; on
// retaining transports the receiver assumes ownership and Releases it).
// Passing a buffer that anything else aliases would poison the pool.
// Ring loops allocate one done channel per channel goroutine and reuse
// it every step, which is what keeps the steady-state hot path
// allocation-free.
func (e *Endpoint) SendToAsync(peer, channel int, b []byte, done chan<- error) {
	s, err := e.senderFor(peer, channel)
	if err != nil {
		transport.PutBuf(b)
		done <- err
		return
	}
	s.enqueue(b, true, done)
}

// GetBuffer returns a wire buffer of length n from the shared pool —
// the encode side of the zero-allocation cycle. Pass the previous
// step's wire size as n so the pooled capacity is right-sized.
func GetBuffer(n int) []byte { return transport.GetBuf(n) }

// Release returns a buffer obtained from RecvFrom/RecvPrev (or
// GetBuffer) to the shared wire pool. Call it only when nothing decoded
// from the buffer aliases it, and never touch the buffer afterwards.
func Release(b []byte) { transport.PutBuf(b) }

// RaceGuard reports whether the wire-pool ownership guard is compiled
// in (-race builds). Hot paths gate tag construction behind it.
const RaceGuard = transport.RaceGuard

// TagWire attaches an ownership tag to a pooled wire buffer under
// -race builds, so a pool-poisoning panic can name the owning channel
// and chunk. No-op in production builds.
func TagWire(b []byte, tag string) { transport.TagBuf(b, tag) }

// RecvFrom blocks for the next message from peer on channel. Failures
// are classified like RecvFromCtx, minus ErrPeerTimeout (no deadline).
func (e *Endpoint) RecvFrom(peer, channel int) ([]byte, error) {
	return e.RecvFromCtx(context.Background(), peer, channel)
}

// SendNext sends on the directed ring.
func (e *Endpoint) SendNext(channel int, b []byte) error {
	return e.SendTo(e.Next(), channel, b)
}

// RecvPrev receives on the directed ring.
func (e *Endpoint) RecvPrev(channel int) ([]byte, error) {
	return e.RecvFrom(e.Prev(), channel)
}

// ConnectRing eagerly establishes the PDR: parallelism outbound
// channels to the next neighbor. Calling it is optional — connections
// are established lazily otherwise — but doing so moves connection
// setup out of the timed reduction path, as Sparker does at executor
// registration.
func (e *Endpoint) ConnectRing(parallelism int) error {
	if e.size == 1 {
		return nil
	}
	for ch := 0; ch < parallelism; ch++ {
		if _, err := e.dial(e.Next(), ch); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the endpoint down and unblocks pending receives.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.closeCh)
	conns := make([]transport.Conn, 0, len(e.inbound)+len(e.dialed)+len(e.handshakes))
	for _, c := range e.inbound {
		conns = append(conns, c)
	}
	for _, c := range e.dialed {
		conns = append(conns, c)
	}
	for c := range e.handshakes {
		conns = append(conns, c)
	}
	senders := make([]*sender, 0, len(e.senders))
	for _, s := range e.senders {
		senders = append(senders, s)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, s := range senders {
		s.close()
	}
	e.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	e.sendWG.Wait()
	e.recvWG.Wait()
	<-e.acceptDone
	return nil
}
