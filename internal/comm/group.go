package comm

// Group helpers for creating whole communicator groups in one process —
// used by tests, examples and the functional benchmarks, where all
// "executors" share an address space but still exchange serialized
// bytes through the transport.

import (
	"fmt"

	"sparker/internal/transport"
)

// NewGroup creates size endpoints with ranks 0..size-1 on net under a
// shared group name. On error, any endpoints already created are
// closed.
func NewGroup(net transport.Network, name string, size int) ([]*Endpoint, error) {
	eps := make([]*Endpoint, 0, size)
	for r := 0; r < size; r++ {
		ep, err := NewEndpoint(net, name, r, size)
		if err != nil {
			for _, p := range eps {
				p.Close()
			}
			return nil, fmt.Errorf("comm: creating rank %d: %w", r, err)
		}
		eps = append(eps, ep)
	}
	return eps, nil
}

// CloseGroup closes every endpoint, returning the first error.
func CloseGroup(eps []*Endpoint) error {
	var first error
	for _, e := range eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
