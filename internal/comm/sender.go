package comm

// Persistent channel senders. Instead of spawning a goroutine per send
// (the seed's asyncSend pattern — one goroutine allocation plus one
// result channel per ring step), each (peer, channel) pair owns one
// long-lived sender goroutine with a mailbox queue, created lazily on
// first use and torn down by Endpoint.Close. Callers overlap send with
// receive by enqueueing with a completion channel they allocate once
// and reuse for every step.

import (
	"sync"

	"sparker/internal/transport"
)

type sendReq struct {
	buf []byte
	// done, when non-nil, receives exactly one send result. It must
	// have capacity >= 1 so the sender never blocks delivering it.
	done chan<- error
}

// sender owns the outbound connection for one (peer, channel) pair.
type sender struct {
	e    *Endpoint
	conn transport.Conn
	// recycle is true when the conn copies the buffer on Send (TCP), so
	// the sender may return it to the wire pool itself. Retaining conns
	// (mem) hand the buffer to the receiver, which releases it instead.
	recycle bool

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sendReq
	closed bool
}

func newSender(e *Endpoint, conn transport.Conn) *sender {
	recycle := false
	if sr, ok := conn.(transport.SendRetainer); ok && !sr.SendRetainsBuffer() {
		recycle = true
	}
	s := &sender{e: e, conn: conn, recycle: recycle}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue hands buf to the sender. Ownership of buf transfers to the
// comm layer; the result is delivered on done (if non-nil), including
// ErrClosed when the endpoint is already shut down.
func (s *sender) enqueue(buf []byte, done chan<- error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if done != nil {
			done <- transport.ErrClosed
		}
		return
	}
	s.queue = append(s.queue, sendReq{buf: buf, done: done})
	s.cond.Signal()
	s.mu.Unlock()
}

// run is the sender goroutine: drain the mailbox in batches, write each
// message, report completions. The two batch slices ping-pong so the
// steady state enqueue/drain cycle does not allocate.
func (s *sender) run() {
	defer s.e.sendWG.Done()
	var batch []sendReq
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		closed := s.closed
		batch, s.queue = s.queue, batch[:0]
		s.mu.Unlock()

		for i := range batch {
			r := &batch[i]
			var err error
			if closed {
				err = transport.ErrClosed
			} else if err = s.conn.Send(r.buf); err == nil {
				s.e.bytesSent.Add(int64(len(r.buf)))
				s.e.msgsSent.Add(1)
				if s.recycle {
					transport.PutBuf(r.buf)
				}
			}
			if r.done != nil {
				r.done <- err
			}
			r.buf = nil
			r.done = nil
		}
		if closed {
			return
		}
	}
}

// close wakes the sender so it fails pending requests and exits. New
// enqueues fail immediately afterwards.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
