package comm

// Persistent channel senders. Instead of spawning a goroutine per send
// (the seed's asyncSend pattern — one goroutine allocation plus one
// result channel per ring step), each (peer, channel) pair owns one
// long-lived sender goroutine with a mailbox queue, created lazily on
// first use and torn down by Endpoint.Close. Callers overlap send with
// receive by enqueueing with a completion channel they allocate once
// and reuse for every step.

import (
	"sync"

	"sparker/internal/transport"
)

type sendReq struct {
	buf []byte
	// recycle marks buf as pool-owned: drawn from the wire pool with no
	// other references, so the sender may return it to the pool once the
	// transport is done with it. Caller-owned buffers (SendTo) are never
	// recycled — an aliased buffer must not re-enter the shared pool.
	recycle bool
	// done, when non-nil, receives exactly one send result. It must
	// have capacity >= 1 so the sender never blocks delivering it.
	done chan<- error
}

// senderMaxQueue bounds each sender's mailbox. The pipelined
// collectives keep at most two chunk frames in flight per channel, so
// a healthy ring never comes near the bound; it exists as back-pressure
// for callers that enqueue faster than the wire drains (without it, a
// producer ahead of a slow link would buffer an unbounded number of
// chunk frames in the mailbox). Enqueue blocks — it does not fail —
// until the sender goroutine drains a batch or the endpoint closes.
const senderMaxQueue = 16

// sender owns the outbound connection for one (peer, channel) pair.
type sender struct {
	e    *Endpoint
	conn transport.Conn
	// copies is true when the conn copies the buffer on Send (TCP), so
	// a pool-owned buffer may be recycled right after the write.
	// Retaining conns (mem) hand the buffer to the receiver, which
	// releases it instead.
	copies bool

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sendReq
	closed bool
}

func newSender(e *Endpoint, conn transport.Conn) *sender {
	copies := false
	if sr, ok := conn.(transport.SendRetainer); ok && !sr.SendRetainsBuffer() {
		copies = true
	}
	s := &sender{e: e, conn: conn, copies: copies}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue hands buf to the sender. Ownership of buf transfers to the
// comm layer; the result is delivered on done (if non-nil), including
// ErrClosed when the endpoint is already shut down (in which case a
// pool-owned buf goes straight back to the pool). A full mailbox blocks
// the caller until the sender drains — the back-pressure that bounds
// how far an encoder can run ahead of the wire.
func (s *sender) enqueue(buf []byte, recycle bool, done chan<- error) {
	s.mu.Lock()
	for len(s.queue) >= senderMaxQueue && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		if recycle {
			transport.PutBuf(buf)
		}
		if done != nil {
			done <- transport.ErrClosed
		}
		return
	}
	s.queue = append(s.queue, sendReq{buf: buf, recycle: recycle, done: done})
	// Broadcast, not Signal: the waiters are a mix of the sender
	// goroutine (waiting for work) and back-pressured producers (waiting
	// for space), and a Signal could wake only a producer while the
	// queue has work.
	s.cond.Broadcast()
	s.mu.Unlock()
	s.e.queueGauge.Load().Add(1)
}

// run is the sender goroutine: drain the mailbox in batches, write each
// message, report completions. The two batch slices ping-pong so the
// steady state enqueue/drain cycle does not allocate.
func (s *sender) run() {
	defer s.e.sendWG.Done()
	var batch []sendReq
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		closed := s.closed
		batch, s.queue = s.queue, batch[:0]
		// The swap freed the whole mailbox; wake any back-pressured
		// producers blocked on a full queue.
		s.cond.Broadcast()
		s.mu.Unlock()

		// Everything drained here was enqueued before close (enqueue
		// rejects afterwards), so the writes are attempted even during
		// shutdown: Endpoint.Close closes the conns, so a flush that can
		// no longer complete fails promptly instead of blocking teardown.
		for i := range batch {
			r := &batch[i]
			err := s.conn.Send(r.buf)
			if err == nil {
				s.e.bytesSent.Add(int64(len(r.buf)))
				s.e.msgsSent.Add(1)
			}
			// Pool-owned buffers re-enter the pool once the transport is
			// done with them: after the write on copying conns, and on
			// every failure path (a failed Send retains nothing).
			if r.recycle && (err != nil || s.copies) {
				transport.PutBuf(r.buf)
			}
			if r.done != nil {
				r.done <- err
			}
			r.buf = nil
			r.done = nil
			s.e.queueGauge.Load().Add(-1)
		}
		if closed {
			return
		}
	}
}

// close wakes the sender so it flushes the already-enqueued backlog
// best-effort and exits. New enqueues fail immediately afterwards.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
