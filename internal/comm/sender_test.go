package comm

import (
	"errors"
	"sync"
	"testing"

	"sparker/internal/transport"
)

// SendToAsync must deliver exactly one completion per enqueue while
// preserving per-(peer, channel) ordering, since the ring loops pipeline
// a send against the matching receive every step.
func TestSendToAsyncOrderedCompletion(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "async", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	const msgs = 64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			b, err := eps[1].RecvFrom(0, 0)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if len(b) != 1 || b[0] != byte(i) {
				t.Errorf("message %d arrived out of order: % x", i, b)
				return
			}
		}
	}()
	done := make(chan error, msgs)
	for i := 0; i < msgs; i++ {
		buf := GetBuffer(1)
		buf[0] = byte(i)
		eps[0].SendToAsync(1, 0, buf, done)
	}
	for i := 0; i < msgs; i++ {
		if err := <-done; err != nil {
			t.Fatalf("async send %d: %v", i, err)
		}
	}
	wg.Wait()
}

// Closing an endpoint must fail (not drop) every pending and future
// async send, or ring goroutines waiting on sendDone would hang.
func TestSendToAsyncAfterCloseFails(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "asyncclose", 2)
	if err != nil {
		t.Fatal(err)
	}
	eps[0].Close()
	done := make(chan error, 1)
	eps[0].SendToAsync(1, 0, GetBuffer(1), done)
	err = <-done
	if err == nil {
		t.Fatal("SendToAsync after Close should report an error")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("SendToAsync after Close: got %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrPeerDown) || errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("local close matched a peer sentinel: %v", err)
	}
	eps[1].Close()
}

// GetBuffer/Release round-trip through the pool: a released buffer's
// backing array comes back on the next same-size request.
func TestGetBufferReleaseReuses(t *testing.T) {
	// Drain any pooled buffers of this class left by other tests so the
	// reuse check below sees our own release.
	const size = 3 << 10
	var drained [][]byte
	for i := 0; i < 256; i++ {
		drained = append(drained, GetBuffer(size))
	}
	b := GetBuffer(size)
	if len(b) != size {
		t.Fatalf("GetBuffer(%d) returned len %d", size, len(b))
	}
	p := &b[0]
	Release(b)
	b2 := GetBuffer(size)
	if &b2[0] != p {
		t.Error("released buffer was not reused by the next GetBuffer")
	}
	for _, d := range drained {
		Release(d)
	}
}

// SendTo must never recycle the caller's buffer into the wire pool: a
// caller that reuses its own allocation between synchronous sends must
// not alias pooled traffic (TCP Recv draws from the pool concurrently).
// Regression test for the Fig13-bench pool poisoning; the -race build's
// pool guard and race detector back up the direct assertion.
func TestSendToDoesNotRecycleCallerBuffer(t *testing.T) {
	n := transport.NewTCP()
	defer n.Close()
	eps, err := NewGroup(n, "sendto-borrow", 2)
	if err != nil {
		t.Fatal(err)
	}
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			b, err := eps[1].RecvFrom(0, 0)
			if err != nil {
				return
			}
			Release(b)
		}
	}()
	buf := make([]byte, 4096)
	p := &buf[0]
	for i := 0; i < 64; i++ {
		buf[0] = byte(i) // caller keeps ownership between sends
		if err := eps[0].SendTo(1, 0, buf); err != nil {
			t.Fatal(err)
		}
		got := GetBuffer(4096)
		if &got[0] == p {
			t.Fatal("SendTo recycled the caller's buffer into the wire pool")
		}
		Release(got)
	}
	CloseGroup(eps)
	<-recvDone
}

// Concurrent SendTo and SendToAsync across channels while the peer is
// torn down mid-stream: nothing may deadlock or panic, and every
// completion channel must fire. Run under -race via `make race`.
func TestSendersSurviveConcurrentClose(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "teardown", 2)
	if err != nil {
		t.Fatal(err)
	}
	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		for {
			if _, err := eps[1].RecvFrom(0, 0); err != nil {
				return
			}
		}
	}()

	const inflight = 32
	done := make(chan error, inflight)
	var sendWG sync.WaitGroup
	for i := 0; i < inflight; i++ {
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			eps[0].SendToAsync(1, 0, GetBuffer(1), done)
		}()
	}
	sendWG.Wait()
	eps[0].Close()
	eps[1].Close()
	for i := 0; i < inflight; i++ {
		<-done // each async send resolves exactly once, ok or ErrClosed
	}
	recvWG.Wait()
}
