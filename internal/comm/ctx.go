package comm

// Context-aware communication surface and failure classification.
//
// The plain RecvFrom/SendTo paths block indefinitely, which is correct
// on a healthy cluster but turns a dead or silent peer into a hung
// collective. The *Ctx variants below accept a context whose deadline
// or cancellation bounds every wait, and every failure is classified
// into one of three exported sentinels so callers can decide between
// retry, fallback and abort with errors.Is instead of string matching:
//
//   - ErrClosed:      this endpoint was shut down locally.
//   - ErrPeerDown:    the connection to the peer failed — the peer
//                     process died or its transport was severed.
//   - ErrPeerTimeout: the peer is silent — the context deadline expired
//                     while waiting for it.
//
// Cancellable receives are served by a per-connection "receiver pump":
// transport.Conn.Recv cannot be interrupted, so the first deadline-
// bearing receive on a connection hands ownership of all its reads to a
// pump goroutine and consumers select on the pump's delivery channel
// versus the context. A message that arrives after its consumer gave up
// stays buffered for the next receive, so an early timeout never loses
// data. Connections that only ever see background-context receives keep
// the direct zero-overhead read path.

import (
	"context"
	"errors"
	"fmt"

	"sparker/internal/transport"
)

// Sentinel errors for the comm layer. ErrClosed aliases
// transport.ErrClosed so the two layers agree on what "locally shut
// down" means; errors.Is matches either spelling.
var (
	ErrClosed      = transport.ErrClosed
	ErrPeerDown    = errors.New("comm: peer down")
	ErrPeerTimeout = errors.New("comm: peer timeout")
)

// peerError classifies a transport-level failure talking to peer. A
// failure observed after the local endpoint closed is our own shutdown
// (ErrClosed); anything else means the peer side is gone (ErrPeerDown).
// The underlying error is flattened with %v in the peer-down case so a
// transport "closed" does not also satisfy errors.Is(err, ErrClosed).
func (e *Endpoint) peerError(op string, peer int, err error) error {
	if err == nil {
		return nil
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		if errors.Is(err, transport.ErrClosed) {
			return fmt.Errorf("comm: %s rank %d: %w", op, peer, ErrClosed)
		}
		return fmt.Errorf("comm: %s rank %d: %v: %w", op, peer, err, ErrClosed)
	}
	return fmt.Errorf("comm: %s rank %d: %w (%v)", op, peer, ErrPeerDown, err)
}

// ctxError classifies a context expiry while waiting on peer: a missed
// deadline means the peer is silent (ErrPeerTimeout); an explicit
// cancellation is propagated as-is.
func (e *Endpoint) ctxError(ctx context.Context, op string, peer int) error {
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("comm: %s rank %d: %w: %w", op, peer, ErrPeerTimeout, err)
	}
	return fmt.Errorf("comm: %s rank %d: %w", op, peer, err)
}

// recvResult is one delivery from a receiver pump.
type recvResult struct {
	buf []byte
	err error
}

// receiver tracks the cancellable-receive state of one inbound
// connection. pumping flips true at most once (guarded by Endpoint.mu);
// termErr is written strictly before dead is closed and read strictly
// after it, so the close is its memory barrier.
type receiver struct {
	conn    transport.Conn
	pending chan recvResult // capacity 1: at most one undelivered message
	dead    chan struct{}   // closed when the pump has exited
	pumping bool            // guarded by Endpoint.mu
	termErr error
}

// receiverFor returns (lazily creating) the receiver for key.
func (e *Endpoint) receiverFor(key connKey, conn transport.Conn) *receiver {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.receivers[key]
	if !ok {
		r = &receiver{
			conn:    conn,
			pending: make(chan recvResult, 1),
			dead:    make(chan struct{}),
		}
		e.receivers[key] = r
	}
	return r
}

// startPump transfers ownership of r.conn's reads to a pump goroutine,
// once. On an already-closed endpoint the receiver is marked dead
// directly — the conn is closed anyway and Close may already be waiting
// on recvWG.
func (e *Endpoint) startPump(r *receiver) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.pumping {
		return
	}
	r.pumping = true
	if e.closed {
		r.termErr = transport.ErrClosed
		close(r.dead)
		return
	}
	e.recvWG.Add(1)
	go e.pump(r)
}

// pump owns all reads on r.conn: it forwards each message into
// r.pending (blocking — capacity 1 provides the backpressure the direct
// path had) and exits on the first connection error or endpoint close.
func (e *Endpoint) pump(r *receiver) {
	defer e.recvWG.Done()
	for {
		b, err := r.conn.Recv()
		if err != nil {
			r.termErr = err
			select {
			case r.pending <- recvResult{err: err}:
			default: // a data message is still buffered; termErr covers the rest
			}
			close(r.dead)
			return
		}
		e.bytesReceived.Add(int64(len(b)))
		e.msgsReceived.Add(1)
		select {
		case r.pending <- recvResult{buf: b}:
		case <-e.closeCh:
			// Shutdown with no consumer: drop the message (pool buffers
			// are simply never recycled — safe) and exit.
			r.termErr = transport.ErrClosed
			close(r.dead)
			return
		}
	}
}

// RecvFromCtx blocks for the next message from peer on channel, bounded
// by ctx. On failure the error matches exactly one of ErrPeerTimeout
// (deadline expired), ErrPeerDown (connection to the peer failed) or
// ErrClosed (local shutdown) under errors.Is.
func (e *Endpoint) RecvFromCtx(ctx context.Context, peer, channel int) ([]byte, error) {
	c, err := e.acceptedCtx(ctx, peer, channel)
	if err != nil {
		return nil, err
	}
	r := e.receiverFor(connKey{peer, channel}, c)
	e.mu.Lock()
	pumping := r.pumping
	e.mu.Unlock()
	if !pumping && ctx.Done() == nil {
		// Uncancellable context and no pump: keep the direct read path.
		b, err := c.Recv()
		if err != nil {
			return nil, e.peerError("recv", peer, err)
		}
		e.bytesReceived.Add(int64(len(b)))
		e.msgsReceived.Add(1)
		return b, nil
	}
	e.startPump(r)
	select {
	case res := <-r.pending:
		if res.err != nil {
			return nil, e.peerError("recv", peer, res.err)
		}
		return res.buf, nil
	case <-r.dead:
		// The pump exited; drain the final buffered delivery if any.
		select {
		case res := <-r.pending:
			if res.err != nil {
				return nil, e.peerError("recv", peer, res.err)
			}
			return res.buf, nil
		default:
			return nil, e.peerError("recv", peer, r.termErr)
		}
	case <-ctx.Done():
		return nil, e.ctxError(ctx, "recv", peer)
	}
}

// RecvPrevCtx receives on the directed ring, bounded by ctx.
func (e *Endpoint) RecvPrevCtx(ctx context.Context, channel int) ([]byte, error) {
	return e.RecvFromCtx(ctx, e.Prev(), channel)
}

// SendToCtx transmits b to peer like SendTo, but bounds the completion
// wait by ctx. Ownership of b transfers to the comm layer either way;
// on a context expiry the write may still complete in the background.
func (e *Endpoint) SendToCtx(ctx context.Context, peer, channel int, b []byte) error {
	s, err := e.senderFor(peer, channel)
	if err != nil {
		return e.peerError("send", peer, err)
	}
	// Not the pooled channel: an abandoned wait must not poison the pool.
	done := make(chan error, 1)
	s.enqueue(b, false, done)
	return e.WaitSend(ctx, peer, done)
}

// WaitSend waits for one completion from done (as delivered by
// SendToAsync), bounded by ctx, and classifies the outcome. Abandoning
// the wait on expiry is safe — completion channels have capacity >= 1 —
// but the caller must not reuse done for another send afterwards, since
// the stale completion may still arrive.
func (e *Endpoint) WaitSend(ctx context.Context, peer int, done <-chan error) error {
	select {
	case err := <-done:
		return e.peerError("send", peer, err)
	case <-ctx.Done():
		return e.ctxError(ctx, "send", peer)
	}
}

// ReapSend polls one completion from done (as delivered by SendToAsync)
// without blocking. It returns (false, nil) when the send is still in
// flight; otherwise the outcome is classified exactly like WaitSend.
// The pipelined collectives use it to retire finished chunk sends
// opportunistically between receives, so the two-deep send window
// recycles as fast as the wire drains instead of once per blocking
// wait.
func (e *Endpoint) ReapSend(peer int, done <-chan error) (bool, error) {
	select {
	case err := <-done:
		return true, e.peerError("send", peer, err)
	default:
		return false, nil
	}
}

// acceptedCtx blocks until the inbound connection from peer on channel
// exists, bounded by ctx.
func (e *Endpoint) acceptedCtx(ctx context.Context, peer, channel int) (transport.Conn, error) {
	key := connKey{peer, channel}
	if done := ctx.Done(); done != nil {
		// Wake the cond wait below when the context fires.
		stop := context.AfterFunc(ctx, func() {
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		defer stop()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if c, ok := e.inbound[key]; ok {
			return c, nil
		}
		if e.closed {
			return nil, fmt.Errorf("comm: recv rank %d: %w", peer, ErrClosed)
		}
		if ctx.Err() != nil {
			return nil, e.ctxError(ctx, "recv", peer)
		}
		e.cond.Wait()
	}
}
