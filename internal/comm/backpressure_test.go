package comm

// Back-pressure tests for the bounded sender mailbox: a producer that
// enqueues faster than the wire drains must block (never fail, never
// buffer unboundedly), and every enqueued send must still complete.

import (
	"sync"
	"testing"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// TestSendToAsyncBackpressureBounds floods one sender with far more
// frames than the mailbox holds, over a link slowed enough that the
// producer outruns the wire. The queue-depth gauge must never exceed
// 2×senderMaxQueue (the mailbox plus the batch the sender goroutine has
// already swapped out), and all sends must complete successfully.
func TestSendToAsyncBackpressureBounds(t *testing.T) {
	const msgs = 64
	net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
		Kind:  transport.FaultDelay,
		Delay: time.Millisecond,
	})
	defer net.Close()
	eps, err := NewGroup(net, "backpressure", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	reg := metrics.NewRegistry()
	eps[0].SetMetrics(reg)
	gauge := reg.Gauge(metrics.GaugeSendQueue)

	// Sample the gauge continuously while the producer floods.
	var (
		maxDepth int64
		stop     = make(chan struct{})
		sampled  sync.WaitGroup
	)
	sampled.Add(1)
	go func() {
		defer sampled.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if v := gauge.Value(); v > maxDepth {
					maxDepth = v
				}
			}
		}
	}()

	var recvd sync.WaitGroup
	recvd.Add(1)
	go func() {
		defer recvd.Done()
		for i := 0; i < msgs; i++ {
			b, err := eps[1].RecvFrom(0, 0)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			Release(b)
		}
	}()

	done := make(chan error, msgs)
	for i := 0; i < msgs; i++ {
		buf := GetBuffer(1 << 10)
		eps[0].SendToAsync(1, 0, buf, done)
	}
	for i := 0; i < msgs; i++ {
		if err := <-done; err != nil {
			t.Fatalf("send %d failed: %v", i, err)
		}
	}
	recvd.Wait()
	close(stop)
	sampled.Wait()

	if limit := int64(2 * senderMaxQueue); maxDepth > limit {
		t.Fatalf("send queue reached depth %d, want <= %d: mailbox back-pressure is not bounding the producer",
			maxDepth, limit)
	}
}

// TestEnqueueBlocksWhenMailboxFull pins the blocking behaviour down
// directly: the producer can run ahead of the wire by at most the
// mailbox plus the batch the sender already swapped out, so enqueueing
// 2×senderMaxQueue+2 frames over a link that stalls each write cannot
// return before at least two stalled writes have completed. If the
// mailbox ever grew unboundedly, the loop would finish in microseconds
// regardless of scheduling.
func TestEnqueueBlocksWhenMailboxFull(t *testing.T) {
	const stall = 20 * time.Millisecond
	net := transport.NewFaulty(transport.NewMem(), 1, &transport.FaultRule{
		Kind:  transport.FaultDelay,
		Delay: stall,
	})
	defer net.Close()
	eps, err := NewGroup(net, "backpressure-block", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	go func() {
		for {
			b, err := eps[1].RecvFrom(0, 0)
			if err != nil {
				return
			}
			Release(b)
		}
	}()

	const msgs = 2*senderMaxQueue + 2
	done := make(chan error, msgs)
	start := time.Now()
	for i := 0; i < msgs; i++ {
		eps[0].SendToAsync(1, 0, GetBuffer(64), done)
	}
	blocked := time.Since(start)
	for i := 0; i < msgs; i++ {
		if err := <-done; err != nil {
			t.Fatalf("send %d failed: %v", i, err)
		}
	}
	// msgs - 2×senderMaxQueue = 2 writes (each >= stall, serialized on
	// one connection) must have drained before the loop could finish.
	if blocked < stall {
		t.Fatalf("enqueueing %d frames over a full mailbox took %v, want >= %v (back-pressure should have blocked the producer)",
			msgs, blocked, stall)
	}
}
