package comm

import (
	"sync"
	"testing"
	"time"

	"sparker/internal/metrics"
	"sparker/internal/transport"
)

// TestSendQueueGauge verifies the queue-depth gauge: sends raise it,
// the sender goroutine drains it back to zero, and a nil registry keeps
// the whole path inert.
func TestSendQueueGauge(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "gauge", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	reg := metrics.NewRegistry()
	eps[0].SetMetrics(reg)
	g := reg.Gauge(metrics.GaugeSendQueue)

	const msgs = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if _, err := eps[1].RecvFrom(0, 0); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}()
	for i := 0; i < msgs; i++ {
		if err := eps[0].SendTo(1, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// Every enqueued message was drained; the gauge must settle at 0.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.Value() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("send queue gauge stuck at %d after drain", g.Value())
}

func TestSetMetricsNilRegistry(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "gauge-nil", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	eps[0].SetMetrics(nil) // must not panic, sends must still work
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].RecvFrom(0, 0)
		done <- err
	}()
	if err := eps[0].SendTo(1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
