//go:build race

package comm

import (
	"strings"
	"testing"

	"sparker/internal/transport"
)

// TestDoubleReleasePanicNamesOwner: under -race, a wire buffer tagged
// by the pipelined ring (channel + chunk index) that is released twice
// must panic with the owner tag in the message — turning "some buffer
// was parked twice" into an actionable pointer at the violating
// channel/chunk.
func TestDoubleReleasePanicNamesOwner(t *testing.T) {
	// Drain the bucket so the first Release below is guaranteed to park
	// (a full bucket drops the buffer, legitimizing the second Release).
	const size = 5 << 12
	var held [][]byte
	for i := 0; i < 128; i++ {
		held = append(held, GetBuffer(size))
	}
	defer func() {
		for _, h := range held {
			transport.PutBuf(h)
		}
	}()

	buf := GetBuffer(size)
	const tag = "ring ch 2 chunk 7/9"
	TagWire(buf, tag)
	Release(buf)
	defer func() {
		// Unpark our buffer so the deferred re-park of held succeeds.
		GetBuffer(size)
	}()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Release of a parked buffer did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, tag) {
			t.Fatalf("double-park panic does not name the owning channel/chunk %q: %v", tag, r)
		}
	}()
	Release(buf)
}
