package comm

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"sparker/internal/transport"
)

// A silent peer must produce ErrPeerTimeout within ~2x the deadline,
// not a hang.
func TestRecvFromCtxTimeout(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "timeout", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	// Establish the conn so the wait is on data, not on the handshake.
	if err := eps[0].SendTo(1, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if b, err := eps[1].RecvFromCtx(context.Background(), 0, 0); err != nil || string(b) != "hello" {
		t.Fatalf("warmup recv: %q, %v", b, err)
	}
	const deadline = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err = eps[1].RecvFromCtx(ctx, 0, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("got %v, want ErrPeerTimeout", err)
	}
	if errors.Is(err, ErrPeerDown) || errors.Is(err, ErrClosed) {
		t.Fatalf("timeout error matches more than one sentinel: %v", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("timeout took %v, want <= %v", elapsed, 2*deadline)
	}
}

// The handshake wait must also observe the deadline: a peer that never
// comes up yields ErrPeerTimeout, not a cond-wait hang.
func TestRecvFromCtxTimeoutBeforeHandshake(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	e, err := NewEndpoint(n, "noshake", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := e.RecvFromCtx(ctx, 1, 0); !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("got %v, want ErrPeerTimeout", err)
	}
}

// A message that arrives after its receive timed out must be delivered
// to the next receive, not lost.
func TestRecvFromCtxLateMessageNotLost(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "late", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	if err := eps[0].SendTo(1, 0, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].RecvFrom(0, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := eps[1].RecvFromCtx(ctx, 0, 0); !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("got %v, want ErrPeerTimeout", err)
	}
	if err := eps[0].SendTo(1, 0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	b, err := eps[1].RecvFromCtx(context.Background(), 0, 0)
	if err != nil || string(b) != "late" {
		t.Fatalf("late message: %q, %v", b, err)
	}
}

// A dead peer (transport severed underneath us) classifies as
// ErrPeerDown — and only ErrPeerDown.
func TestRecvClassifiesPeerDown(t *testing.T) {
	inner := transport.NewMem()
	n := transport.NewFaulty(inner, 1)
	defer n.Close()
	eps, err := NewGroup(n, "down", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	if err := eps[0].SendTo(1, 0, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[1].RecvFrom(0, 0); err != nil {
		t.Fatal(err)
	}
	// Kill severs conns by listener address: matching rank 1's address
	// cuts the inbound link 0 -> 1, which from rank 1's (not closed)
	// point of view is the peer disappearing.
	n.Kill(func(a transport.Addr) bool { return a == "comm/down/1" })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = eps[1].RecvFromCtx(ctx, 0, 0)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("recv from dead link: got %v, want ErrPeerDown", err)
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("peer-down error matches more than one sentinel: %v", err)
	}
	// Send side: rank 0's dialed conn into rank 1 died with the same
	// kill, so its next send classifies as peer down too.
	err = eps[0].SendTo(1, 0, []byte("x"))
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to dead link: got %v, want ErrPeerDown", err)
	}
}

// Local shutdown classifies as ErrClosed on every surface.
func TestCloseClassifiesErrClosed(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "closecls", 2)
	if err != nil {
		t.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := eps[1].RecvFromCtx(context.Background(), 0, 0)
		recvErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	CloseGroup(eps)
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv after close: got %v, want ErrClosed", err)
		}
		if errors.Is(err, ErrPeerDown) {
			t.Fatalf("local close misclassified as peer down: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not observe Close")
	}
	if err := eps[0].SendTo(1, 0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: got %v, want ErrClosed", err)
	}
}

// WaitSend classifies an expired deadline as ErrPeerTimeout without
// consuming the (possibly still outstanding) completion.
func TestWaitSendTimeout(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "waitsend", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	done := make(chan error, 1) // never delivered to: simulate a stuck write
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := eps[0].WaitSend(ctx, 1, done); !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("got %v, want ErrPeerTimeout", err)
	}
}

// settleGoroutines waits for the goroutine count to drop back to at
// most want, tolerating runtime background noise via a settle loop.
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d, want <= %d", now, want)
}

// Close must reap every goroutine the endpoint spawned: accept loop,
// handshake readers (including ones whose header never arrives),
// persistent senders and receiver pumps.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	before := runtime.NumGoroutine()
	eps, err := NewGroup(n, "leak", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise senders, direct receives and ctx receives (pumps).
	for i := range eps {
		next := (i + 1) % len(eps)
		if err := eps[i].SendTo(next, 0, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	for i := range eps {
		prev := (i + 2) % len(eps)
		if _, err := eps[i].RecvFrom(prev, 0); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := eps[0].RecvFromCtx(ctx, 1, 0); !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("pump recv: %v", err)
	}
	cancel()
	// A handshake that never completes: dial the listener raw and send
	// nothing. Close must reap the header-reader goroutine.
	raw, err := n.Dial("comm/leak/0")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the accept loop pick it up
	CloseGroup(eps)
	raw.Close()
	settleGoroutines(t, before)
}
