package comm

import "sort"

// RanksByHost computes a topology-aware rank assignment: executors are
// ordered by hostname (stably, preserving executor index order within a
// host), so ring neighbors land on the same node wherever possible and
// each node boundary is crossed exactly once per lap. The paper reports
// a 2.76× reduce-scatter speedup from this ordering (Figure 14).
//
// hosts[i] is the hostname of executor i. The returned slice perm maps
// rank -> executor index: perm[r] is the executor that should take rank
// r. RanksByHost does not modify hosts.
func RanksByHost(hosts []string) []int {
	perm := make([]int, len(hosts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return hosts[perm[a]] < hosts[perm[b]]
	})
	return perm
}

// InverseRanks inverts a rank permutation: given perm[rank] = executor,
// it returns rankOf[executor] = rank.
func InverseRanks(perm []int) []int {
	inv := make([]int, len(perm))
	for r, e := range perm {
		inv[e] = r
	}
	return inv
}

// Topology is an immutable rank<->executor assignment, the rank-order
// view schedulers and placement policies consume. Build one with
// NewTopology from the permutation RanksByHost (or the identity)
// produces.
type Topology struct {
	execOfRank []int // rank -> executor
	rankOfExec []int // executor -> rank
}

// NewTopology wraps perm (perm[rank] = executor index), copying it so
// later caller mutations cannot skew the assignment.
func NewTopology(perm []int) Topology {
	cp := make([]int, len(perm))
	copy(cp, perm)
	return Topology{execOfRank: cp, rankOfExec: InverseRanks(cp)}
}

// IdentityTopology is the unsorted baseline: rank i on executor i.
func IdentityTopology(n int) Topology {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return Topology{execOfRank: perm, rankOfExec: InverseRanks(perm)}
}

// Size returns the number of ranks.
func (t Topology) Size() int { return len(t.execOfRank) }

// ExecutorOfRank returns the executor holding ring rank r.
func (t Topology) ExecutorOfRank(r int) int { return t.execOfRank[r] }

// RankOfExecutor returns executor e's ring rank.
func (t Topology) RankOfExecutor(e int) int { return t.rankOfExec[e] }

// ExecOfRank returns a copy of the rank -> executor permutation, the
// shape placement policies (sched.NewTopologyAware) take.
func (t Topology) ExecOfRank() []int {
	cp := make([]int, len(t.execOfRank))
	copy(cp, t.execOfRank)
	return cp
}

// CrossNodeHops counts how many directed ring edges cross node
// boundaries under the given rank assignment. It is the quantity
// topology awareness minimizes: with E executors on H hosts the best
// achievable value is H (one boundary crossing per host) and the worst
// is E.
func CrossNodeHops(hosts []string, perm []int) int {
	n := len(perm)
	if n <= 1 {
		return 0
	}
	hops := 0
	for r := 0; r < n; r++ {
		a := hosts[perm[r]]
		b := hosts[perm[(r+1)%n]]
		if a != b {
			hops++
		}
	}
	return hops
}
