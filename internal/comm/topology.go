package comm

import "sort"

// RanksByHost computes a topology-aware rank assignment: executors are
// ordered by hostname (stably, preserving executor index order within a
// host), so ring neighbors land on the same node wherever possible and
// each node boundary is crossed exactly once per lap. The paper reports
// a 2.76× reduce-scatter speedup from this ordering (Figure 14).
//
// hosts[i] is the hostname of executor i. The returned slice perm maps
// rank -> executor index: perm[r] is the executor that should take rank
// r. RanksByHost does not modify hosts.
func RanksByHost(hosts []string) []int {
	perm := make([]int, len(hosts))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return hosts[perm[a]] < hosts[perm[b]]
	})
	return perm
}

// InverseRanks inverts a rank permutation: given perm[rank] = executor,
// it returns rankOf[executor] = rank.
func InverseRanks(perm []int) []int {
	inv := make([]int, len(perm))
	for r, e := range perm {
		inv[e] = r
	}
	return inv
}

// CrossNodeHops counts how many directed ring edges cross node
// boundaries under the given rank assignment. It is the quantity
// topology awareness minimizes: with E executors on H hosts the best
// achievable value is H (one boundary crossing per host) and the worst
// is E.
func CrossNodeHops(hosts []string, perm []int) int {
	n := len(perm)
	if n <= 1 {
		return 0
	}
	hops := 0
	for r := 0; r < n; r++ {
		a := hosts[perm[r]]
		b := hosts[perm[(r+1)%n]]
		if a != b {
			hops++
		}
	}
	return hops
}
