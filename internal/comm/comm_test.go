package comm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"sparker/internal/transport"
)

func TestRingNeighbors(t *testing.T) {
	cases := []struct {
		rank, size, next, prev int
	}{
		{0, 4, 1, 3},
		{3, 4, 0, 2},
		{0, 1, 0, 0},
		{2, 5, 3, 1},
	}
	for _, c := range cases {
		e := &Endpoint{rank: c.rank, size: c.size}
		if e.Next() != c.next || e.Prev() != c.prev {
			t.Errorf("rank %d/%d: next=%d prev=%d, want %d %d",
				c.rank, c.size, e.Next(), e.Prev(), c.next, c.prev)
		}
	}
}

func TestNewEndpointValidation(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := NewEndpoint(n, "g", bad[0], bad[1]); err == nil {
			t.Errorf("NewEndpoint(rank=%d,size=%d) should fail", bad[0], bad[1])
		}
	}
}

func TestPointToPoint(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "p2p", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := eps[0].SendTo(2, 0, []byte("hello-2")); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		b, err := eps[2].RecvFrom(0, 0)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if string(b) != "hello-2" {
			t.Errorf("got %q", b)
		}
	}()
	wg.Wait()
}

func TestParallelChannelsIndependent(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "chan", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)

	const P = 4
	var wg sync.WaitGroup
	for ch := 0; ch < P; ch++ {
		wg.Add(2)
		go func(ch int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("ch%d-%d", ch, i)
				if err := eps[0].SendNext(ch, []byte(msg)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ch)
		go func(ch int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b, err := eps[1].RecvPrev(ch)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if want := fmt.Sprintf("ch%d-%d", ch, i); string(b) != want {
					t.Errorf("channel %d out of order: got %q want %q", ch, b, want)
					return
				}
			}
		}(ch)
	}
	wg.Wait()
}

// Messages circulate a full ring lap and come back intact.
func TestRingLap(t *testing.T) {
	for _, size := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			n := transport.NewMem()
			defer n.Close()
			eps, err := NewGroup(n, "lap", size)
			if err != nil {
				t.Fatal(err)
			}
			defer CloseGroup(eps)
			for _, e := range eps {
				if err := e.ConnectRing(1); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for _, e := range eps {
				wg.Add(1)
				go func(e *Endpoint) {
					defer wg.Done()
					token := []byte{byte(e.Rank())}
					for step := 0; step < size; step++ {
						if err := e.SendNext(0, token); err != nil {
							t.Errorf("rank %d send: %v", e.Rank(), err)
							return
						}
						var err error
						token, err = e.RecvPrev(0)
						if err != nil {
							t.Errorf("rank %d recv: %v", e.Rank(), err)
							return
						}
					}
					// After size hops each token returns home.
					if int(token[0]) != e.Rank() {
						t.Errorf("rank %d: token %d did not return", e.Rank(), token[0])
					}
				}(e)
			}
			wg.Wait()
		})
	}
}

func TestRingLapOverTCP(t *testing.T) {
	n := transport.NewTCP()
	defer n.Close()
	eps, err := NewGroup(n, "laptcp", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	var wg sync.WaitGroup
	for _, e := range eps {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			token := []byte{byte(e.Rank())}
			for step := 0; step < 4; step++ {
				if err := e.SendNext(0, token); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				var err error
				token, err = e.RecvPrev(0)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
			}
			if int(token[0]) != e.Rank() {
				t.Errorf("rank %d: token %d did not return", e.Rank(), token[0])
			}
		}(e)
	}
	wg.Wait()
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "close", 2)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := eps[0].RecvFrom(1, 7)
		errc <- err
	}()
	eps[0].Close()
	if err := <-errc; err == nil {
		t.Fatal("RecvFrom should fail after Close")
	}
	eps[1].Close()
}

func TestRanksByHost(t *testing.T) {
	// 6 executors round-robin across 3 hosts, as a scheduler would
	// place them.
	hosts := []string{"node-b", "node-a", "node-c", "node-b", "node-a", "node-c"}
	perm := RanksByHost(hosts)
	want := []int{1, 4, 0, 3, 2, 5} // node-a executors first, stable
	if !reflect.DeepEqual(perm, want) {
		t.Fatalf("RanksByHost = %v, want %v", perm, want)
	}
	if got := CrossNodeHops(hosts, perm); got != 3 {
		t.Errorf("sorted hops = %d, want 3 (one per host)", got)
	}
	identity := []int{0, 1, 2, 3, 4, 5}
	if got := CrossNodeHops(hosts, identity); got != 6 {
		t.Errorf("round-robin hops = %d, want 6", got)
	}
}

func TestInverseRanks(t *testing.T) {
	perm := []int{2, 0, 1}
	inv := InverseRanks(perm)
	if !reflect.DeepEqual(inv, []int{1, 2, 0}) {
		t.Fatalf("InverseRanks = %v", inv)
	}
}

func TestQuickTopologySortedIsOptimal(t *testing.T) {
	// Property: for any host assignment, sorting by host achieves
	// cross-node hops == number of distinct hosts (when more than one),
	// and never more than the identity ordering... the latter is not
	// true in general for arbitrary inputs, but optimality of the
	// sorted order is.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		hosts := make([]string, len(raw))
		distinct := map[string]bool{}
		for i, r := range raw {
			hosts[i] = fmt.Sprintf("host-%d", r%4)
			distinct[hosts[i]] = true
		}
		perm := RanksByHost(hosts)
		hops := CrossNodeHops(hosts, perm)
		if len(distinct) == 1 {
			return hops == 0
		}
		return hops == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseRanksRoundTrip(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		hosts := make([]string, n)
		for i := range hosts {
			seed = seed*1664525 + 1013904223
			hosts[i] = fmt.Sprintf("h%d", seed%5)
		}
		perm := RanksByHost(hosts)
		inv := InverseRanks(perm)
		for r, e := range perm {
			if inv[e] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A stray connection speaking garbage must not crash or wedge the
// endpoint's accept loop.
func TestGarbageHandshakeIgnored(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "garbage", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	// Dial rank 0's listener directly and send a short bogus header.
	raw, err := n.Dial("comm/garbage/0")
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Send([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Legitimate traffic still flows.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b, err := eps[0].RecvFrom(1, 0)
		if err != nil || string(b) != "still alive" {
			t.Errorf("recv after garbage: %q %v", b, err)
		}
	}()
	if err := eps[1].SendTo(0, 0, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestConnectRingSingleRank(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "solo", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	if err := eps[0].ConnectRing(4); err != nil {
		t.Fatalf("ConnectRing on size-1 group: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	n := transport.NewMem()
	defer n.Close()
	eps, err := NewGroup(n, "stats", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseGroup(eps)
	payload := make([]byte, 100)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := eps[1].RecvFrom(0, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := eps[0].SendTo(1, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	s0, s1 := eps[0].Stats(), eps[1].Stats()
	if s0.MsgsSent != 3 || s0.BytesSent != 300 {
		t.Fatalf("sender stats = %+v", s0)
	}
	if s1.MsgsReceived != 3 || s1.BytesReceived != 300 {
		t.Fatalf("receiver stats = %+v", s1)
	}
}
