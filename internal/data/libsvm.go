package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sparker/internal/linalg"
	"sparker/internal/mllib"
)

// ReadLibSVMPacked parses the libsvm text format ("label idx:val
// idx:val …", 1-based indices) straight into a packed CSR partition:
// each entry streams into the shared arenas as it is parsed, with no
// per-row intermediate slices. part tags the matrix's partition index
// (minibatch sampling keys its RNG stream off it); numFeatures 0 means
// infer dimensionality from the data.
func ReadLibSVMPacked(r io.Reader, part, numFeatures int) (*linalg.CSRMatrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	b := linalg.NewCSRBuilder(numFeatures, 0, 0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: line %d: bad label %q", lineNo, fields[0])
		}
		// Normalize the common ±1 convention to 0/1.
		if label == -1 {
			label = 0
		}
		b.StartRow(label)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("data: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("data: line %d: bad index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad value %q", lineNo, f[colon+1:])
			}
			// libsvm is 1-based; the builder enforces strictly increasing
			// in-range indices (duplicates and disorder error here, as
			// NewSparse did for the slice path).
			if err := b.AppendEntry(int32(idx-1), val); err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m, err := b.Build()
	if err != nil {
		return nil, err
	}
	m.Part = part
	return m, nil
}

// ReadLibSVM parses libsvm text into labeled points. It is a thin
// wrapper over ReadLibSVMPacked: rows are zero-copy views into one
// packed arena, so the slice costs O(rows) headers, not O(nnz) copies.
func ReadLibSVM(r io.Reader, numFeatures int) ([]mllib.LabeledPoint, error) {
	m, err := ReadLibSVMPacked(r, 0, numFeatures)
	if err != nil {
		return nil, err
	}
	out := make([]mllib.LabeledPoint, m.Rows())
	for i := range out {
		out[i] = mllib.LabeledPoint{Label: m.Label(i), Features: m.Row(i)}
	}
	return out, nil
}

// WriteLibSVM renders points in libsvm format.
func WriteLibSVM(w io.Writer, points []mllib.LabeledPoint) error {
	bw := bufio.NewWriter(w)
	for _, p := range points {
		label := p.Label
		if _, err := fmt.Fprintf(bw, "%g", label); err != nil {
			return err
		}
		for i, ix := range p.Features.Indices {
			if _, err := fmt.Fprintf(bw, " %d:%g", ix+1, p.Features.Values[i]); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVMFile loads a libsvm file from disk.
func ReadLibSVMFile(path string, numFeatures int) ([]mllib.LabeledPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLibSVM(f, numFeatures)
}

// ReadBagOfWordsFile loads a UCI bag-of-words file from disk.
func ReadBagOfWordsFile(path string) ([]mllib.Document, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadBagOfWords(f)
}

// ReadBagOfWords parses the UCI bag-of-words format the paper's LDA
// corpora (enron, nytimes) ship in: three header lines (D, W, NNZ) then
// "docID wordID count" triples, 1-based ids, docID-sorted.
func ReadBagOfWords(r io.Reader) (docs []mllib.Document, vocab int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var header [3]int
	for i := 0; i < 3; i++ {
		if !sc.Scan() {
			return nil, 0, fmt.Errorf("data: truncated bag-of-words header")
		}
		header[i], err = strconv.Atoi(strings.TrimSpace(sc.Text()))
		if err != nil {
			return nil, 0, fmt.Errorf("data: bad header line %d: %w", i+1, err)
		}
	}
	nDocs, vocab := header[0], header[1]
	counts := make([]map[int32]float64, nDocs)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("data: bad triple %q", line)
		}
		d, err1 := strconv.Atoi(fields[0])
		w, err2 := strconv.Atoi(fields[1])
		c, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || d < 1 || d > nDocs || w < 1 || w > vocab {
			return nil, 0, fmt.Errorf("data: bad triple %q", line)
		}
		if counts[d-1] == nil {
			counts[d-1] = map[int32]float64{}
		}
		counts[d-1][int32(w-1)] += c
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	docs = make([]mllib.Document, nDocs)
	for i, m := range counts {
		if m == nil {
			m = map[int32]float64{}
		}
		docs[i] = docFromCounts(m)
	}
	return docs, vocab, nil
}

// WriteBagOfWords renders docs in the UCI format.
func WriteBagOfWords(w io.Writer, docs []mllib.Document, vocab int) error {
	bw := bufio.NewWriter(w)
	nnz := 0
	for _, d := range docs {
		nnz += len(d.WordIDs)
	}
	if _, err := fmt.Fprintf(bw, "%d\n%d\n%d\n", len(docs), vocab, nnz); err != nil {
		return err
	}
	for i, d := range docs {
		for j, word := range d.WordIDs {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", i+1, word+1, d.Counts[j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
