package data

import (
	"strings"
	"testing"
)

// FuzzReadLibSVM: arbitrary text input must parse or error, never
// panic, and parsed rows must satisfy the sparse-vector invariants.
func FuzzReadLibSVM(f *testing.F) {
	f.Add("1 1:0.5 3:2\n-1 2:1\n")
	f.Add("+1 1:1\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("0 5:nan\n")
	f.Add("1 1:1 1:2\n") // duplicate index
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadLibSVM(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		for _, p := range pts {
			if p.Features.NNZ() != len(p.Features.Values) {
				t.Fatal("inconsistent sparse vector")
			}
			prev := int32(-1)
			for _, ix := range p.Features.Indices {
				if ix <= prev || int(ix) >= p.Features.Dim {
					t.Fatalf("invariant violated: idx %d after %d (dim %d)", ix, prev, p.Features.Dim)
				}
				prev = ix
			}
		}
	})
}

// FuzzReadBagOfWords: same guarantee for the UCI corpus format.
func FuzzReadBagOfWords(f *testing.F) {
	f.Add("2\n5\n3\n1 1 2\n1 3 1\n2 5 4\n")
	f.Add("0\n0\n0\n")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, input string) {
		docs, vocab, err := ReadBagOfWords(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, d := range docs {
			if err := d.Validate(vocab); err != nil {
				t.Fatalf("parsed doc violates invariants: %v", err)
			}
		}
	})
}
