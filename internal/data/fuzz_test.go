package data

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadLibSVM: arbitrary text input must parse or error, never
// panic; parsed rows must satisfy the sparse-vector invariants; and
// the packed CSR parse must agree with the point-slice view exactly
// (same accept/reject decision, same labels, indices and values).
func FuzzReadLibSVM(f *testing.F) {
	f.Add("1 1:0.5 3:2\n-1 2:1\n")
	f.Add("+1 1:1\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("0 5:nan\n")
	f.Add("1 1:1 1:2\n") // duplicate index
	f.Add("1 2:1 1:2\n") // out-of-order indices
	f.Add("-1\n1\n")     // feature-less rows
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadLibSVM(strings.NewReader(input), 0)
		m, perr := ReadLibSVMPacked(strings.NewReader(input), 3, 0)
		if (err == nil) != (perr == nil) {
			t.Fatalf("packed/slice accept mismatch: %v vs %v", err, perr)
		}
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("packed parse violates CSR invariants: %v", verr)
		}
		if m.Part != 3 || m.Rows() != len(pts) {
			t.Fatalf("packed parse: part %d rows %d, want 3, %d", m.Part, m.Rows(), len(pts))
		}
		for i, p := range pts {
			if p.Features.NNZ() != len(p.Features.Values) {
				t.Fatal("inconsistent sparse vector")
			}
			prev := int32(-1)
			for _, ix := range p.Features.Indices {
				if ix <= prev || int(ix) >= p.Features.Dim {
					t.Fatalf("invariant violated: idx %d after %d (dim %d)", ix, prev, p.Features.Dim)
				}
				prev = ix
			}
			row := m.Row(i)
			if math.Float64bits(m.Label(i)) != math.Float64bits(p.Label) {
				t.Fatalf("row %d: packed label %v != %v", i, m.Label(i), p.Label)
			}
			if len(row.Indices) != len(p.Features.Indices) || row.Dim != p.Features.Dim {
				t.Fatalf("row %d: packed shape mismatch", i)
			}
			for j := range row.Indices {
				if row.Indices[j] != p.Features.Indices[j] ||
					math.Float64bits(row.Values[j]) != math.Float64bits(p.Features.Values[j]) {
					t.Fatalf("row %d entry %d: packed/slice mismatch", i, j)
				}
			}
		}
	})
}

// FuzzReadBagOfWords: same guarantee for the UCI corpus format.
func FuzzReadBagOfWords(f *testing.F) {
	f.Add("2\n5\n3\n1 1 2\n1 3 1\n2 5 4\n")
	f.Add("0\n0\n0\n")
	f.Add("x\n")
	f.Fuzz(func(t *testing.T, input string) {
		docs, vocab, err := ReadBagOfWords(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, d := range docs {
			if err := d.Validate(vocab); err != nil {
				t.Fatalf("parsed doc violates invariants: %v", err)
			}
		}
	})
}
