package data

import "fmt"

// Task distinguishes workload families (Table 2's "Task" column).
type Task string

// Task values.
const (
	TaskClassification Task = "classification"
	TaskTopicModel     Task = "topic model"
)

// Profile records one Table-2 dataset at paper scale plus the
// generation parameters used for its synthetic stand-in.
type Profile struct {
	// Name is the paper's dataset name.
	Name string
	// Task is the workload family.
	Task Task
	// Samples is rows (classification) or documents (topic model).
	Samples int
	// Features is feature count (classification) or dictionary size
	// (topic model).
	Features int
	// NNZPerSample approximates row density (classification) or mean
	// distinct words per document (topic model).
	NNZPerSample int
	// Source is the paper's provenance column.
	Source string
}

// Profiles are the six Table-2 datasets at their published scales.
// AggregatorBytes shows why kdd10/kdd12/nytimes dominate Figure 17:
// their aggregators are hundreds of MB.
var Profiles = []Profile{
	{Name: "avazu", Task: TaskClassification, Samples: 45_006_431, Features: 1_000_000, NNZPerSample: 15, Source: "libsvm"},
	{Name: "criteo", Task: TaskClassification, Samples: 51_882_752, Features: 1_000_000, NNZPerSample: 39, Source: "libsvm"},
	{Name: "kdd10", Task: TaskClassification, Samples: 8_918_054, Features: 20_216_830, NNZPerSample: 30, Source: "libsvm"},
	{Name: "kdd12", Task: TaskClassification, Samples: 149_639_105, Features: 54_686_452, NNZPerSample: 11, Source: "libsvm"},
	{Name: "enron", Task: TaskTopicModel, Samples: 39_861, Features: 28_102, NNZPerSample: 90, Source: "uci"},
	{Name: "nytimes", Task: TaskTopicModel, Samples: 300_000, Features: 102_660, NNZPerSample: 230, Source: "uci"},
}

// ProfileByName looks a profile up.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("data: unknown dataset profile %q", name)
}

// AggregatorBytes returns the per-iteration aggregator size of the
// MLlib workload over this dataset: 8·features for the linear models'
// gradient (plus loss/count words), 8·K·V for LDA's expected-count
// matrix.
func (p Profile) AggregatorBytes(ldaTopics int) int64 {
	if p.Task == TaskTopicModel {
		return 8 * int64(ldaTopics) * int64(p.Features)
	}
	return 8 * (int64(p.Features) + 2)
}

// Scaled returns a laptop-scale copy: dimensions divided by factor
// (minimum sizes keep the workload meaningful). Used by the functional
// examples and tests; the sim layer always uses the unscaled profile.
func (p Profile) Scaled(factor int) Profile {
	if factor < 1 {
		factor = 1
	}
	q := p
	q.Samples = maxInt(p.Samples/factor, 200)
	q.Features = maxInt(p.Features/factor, 50)
	q.NNZPerSample = minInt(p.NNZPerSample, q.Features)
	return q
}

// ClassificationSpec converts a (scaled) classification profile into
// generator parameters.
func (p Profile) ClassificationSpec(seed int64) ClassificationSpec {
	return ClassificationSpec{
		Samples:      p.Samples,
		Features:     p.Features,
		NNZPerSample: p.NNZPerSample,
		Seed:         seed,
	}
}

// CorpusSpec converts a (scaled) topic-model profile into generator
// parameters.
func (p Profile) CorpusSpec(topics int, seed int64) CorpusSpec {
	return CorpusSpec{
		Docs:       p.Samples,
		Vocab:      p.Features,
		Topics:     topics,
		MeanDocLen: p.NNZPerSample,
		Seed:       seed,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
