// Package data supplies the datasets of the evaluation. The paper's
// corpora are proprietary-scale downloads (Table 2: avazu, criteo,
// kdd10, kdd12 from libsvm; enron, nytimes from UCI); per the
// substitution rule we generate shape-preserving synthetic equivalents
// — same task type, same sparsity regime, aggregator sizes scaled by a
// single factor — plus a libsvm reader/writer so real files can be
// used when available.
package data

import (
	"math"
	"math/rand"

	"sparker/internal/linalg"
	"sparker/internal/mllib"
)

// ClassificationSpec shapes a synthetic classification dataset.
type ClassificationSpec struct {
	// Samples and Features set the matrix dimensions.
	Samples, Features int
	// NNZPerSample is the average number of non-zeros per row.
	NNZPerSample int
	// NoiseRate flips this fraction of labels (default 0.05).
	NoiseRate float64
	// Seed makes generation deterministic.
	Seed int64
	// NNZAlpha, when > 0, replaces the ±25% uniform jitter around
	// NNZPerSample with a truncated Pareto (power-law) draw of that
	// shape, and tilts feature popularity head-heavy — the shape of real
	// CTR data like avazu/criteo, where most rows are tiny, a few are
	// huge, and a small set of head features appears in nearly every
	// row. Values near 1 give the heaviest tail; ~1.5 is avazu-like.
	NNZAlpha float64
}

// GenClassification synthesizes linearly-separable-with-noise sparse
// samples: a hidden weight vector labels each random sparse row, and
// NoiseRate of the labels are flipped. Labels are 0/1.
func GenClassification(spec ClassificationSpec) []mllib.LabeledPoint {
	if spec.NoiseRate == 0 {
		spec.NoiseRate = 0.05
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	truth := make([]float64, spec.Features)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	out := make([]mllib.LabeledPoint, spec.Samples)
	for s := range out {
		var x linalg.SparseVector
		if spec.NNZAlpha > 0 {
			x = randSparsePowerLaw(rng, spec.Features, spec.NNZPerSample, spec.NNZAlpha)
		} else {
			x = randSparse(rng, spec.Features, spec.NNZPerSample)
		}
		margin := linalg.Dot(truth, x)
		label := 0.0
		if margin > 0 {
			label = 1
		}
		if rng.Float64() < spec.NoiseRate {
			label = 1 - label
		}
		out[s] = mllib.LabeledPoint{Label: label, Features: x}
	}
	return out
}

// GenClassificationPartition generates only partition part of parts —
// executors synthesize their own data without the driver materializing
// the full dataset, the way the benches load paper-scale inputs.
func GenClassificationPartition(spec ClassificationSpec, part, parts int) []mllib.LabeledPoint {
	lo := part * spec.Samples / parts
	hi := (part + 1) * spec.Samples / parts
	sub := spec
	sub.Samples = hi - lo
	sub.Seed = spec.Seed ^ (int64(part)+1)*0x1E3779B97F4A7C15
	return GenClassification(sub)
}

// randSparse draws a sparse vector with Poisson-ish nnz and N(0,1)
// values at uniformly random distinct indices.
func randSparse(rng *rand.Rand, dim, avgNNZ int) linalg.SparseVector {
	nnz := avgNNZ
	if nnz <= 0 {
		nnz = 1
	}
	// Jitter ±25% around the mean.
	nnz += rng.Intn(nnz/2+1) - nnz/4
	if nnz < 1 {
		nnz = 1
	}
	if nnz > dim {
		nnz = dim
	}
	seen := make(map[int32]bool, nnz)
	idx := make([]int32, 0, nnz)
	for len(idx) < nnz {
		i := int32(rng.Intn(dim))
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sortInt32(idx)
	vals := make([]float64, nnz)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	v, err := linalg.NewSparse(dim, idx, vals)
	if err != nil {
		panic(err) // construction is correct by design
	}
	return v
}

// randSparsePowerLaw draws a sparse vector whose non-zero count follows
// a truncated Pareto with shape alpha and whose indices follow a
// head-heavy power-law popularity (density ∝ id^(-2/3): low feature
// ids are the frequent "head" categories). The Pareto scale is set so
// the mean row length matches avgNNZ (mean of Pareto(α, xₘ) is
// α·xₘ/(α−1)); the draw is clamped to [1, min(dim, 20·avgNNZ)] so one
// outlier row cannot dominate a partition.
func randSparsePowerLaw(rng *rand.Rand, dim, avgNNZ int, alpha float64) linalg.SparseVector {
	if alpha <= 1 {
		alpha = 1.1 // shape ≤ 1 has no finite mean to calibrate against
	}
	if avgNNZ < 1 {
		avgNNZ = 1
	}
	xm := float64(avgNNZ) * (alpha - 1) / alpha
	if xm < 1 {
		xm = 1
	}
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	nnz := int(xm * math.Pow(u, -1/alpha))
	maxNNZ := 20 * avgNNZ
	if maxNNZ > dim {
		maxNNZ = dim
	}
	if nnz < 1 {
		nnz = 1
	}
	if nnz > maxNNZ {
		nnz = maxNNZ
	}
	seen := make(map[int32]bool, nnz)
	idx := make([]int32, 0, nnz)
	// Rejection-sample distinct head-tilted ids; a long row colliding
	// hard in the head falls back to the first unseen ids so generation
	// always terminates.
	for attempts := 0; len(idx) < nnz && attempts < 20*nnz; attempts++ {
		i := int32(float64(dim) * math.Pow(rng.Float64(), 3.0))
		if i >= int32(dim) {
			i = int32(dim) - 1
		}
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	for i := int32(0); len(idx) < nnz; i++ {
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sortInt32(idx)
	vals := make([]float64, nnz)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	v, err := linalg.NewSparse(dim, idx, vals)
	if err != nil {
		panic(err) // construction is correct by design
	}
	return v
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// CorpusSpec shapes a synthetic LDA corpus.
type CorpusSpec struct {
	// Docs, Vocab set the corpus size; Topics the hidden topic count.
	Docs, Vocab, Topics int
	// MeanDocLen is the average tokens per document.
	MeanDocLen int
	// Seed makes generation deterministic.
	Seed int64
}

// GenCorpus synthesizes documents from a hidden LDA-style generative
// process: each topic is a Zipf-tilted distribution over a vocabulary
// band, each document mixes a couple of topics.
func GenCorpus(spec CorpusSpec) []mllib.Document {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Topics < 1 {
		spec.Topics = 1
	}
	if spec.MeanDocLen < 1 {
		spec.MeanDocLen = 50
	}
	// Topic t prefers the vocab band [t*V/T, (t+1)*V/T) with Zipf decay.
	out := make([]mllib.Document, spec.Docs)
	for d := range out {
		k1 := rng.Intn(spec.Topics)
		k2 := rng.Intn(spec.Topics)
		docLen := spec.MeanDocLen/2 + rng.Intn(spec.MeanDocLen+1)
		counts := map[int32]float64{}
		for t := 0; t < docLen; t++ {
			k := k1
			if rng.Float64() < 0.3 {
				k = k2
			}
			w := int32(topicWord(rng, k, spec.Topics, spec.Vocab))
			counts[w]++
		}
		out[d] = docFromCounts(counts)
	}
	return out
}

// GenCorpusPartition generates only partition part of parts.
func GenCorpusPartition(spec CorpusSpec, part, parts int) []mllib.Document {
	lo := part * spec.Docs / parts
	hi := (part + 1) * spec.Docs / parts
	sub := spec
	sub.Docs = hi - lo
	sub.Seed = spec.Seed ^ (int64(part)+1)*0x1E3779B97F4A7C15
	return GenCorpus(sub)
}

// topicWord samples a word for topic k: mostly from the topic's band,
// Zipf-tilted, with a uniform background.
func topicWord(rng *rand.Rand, k, topics, vocab int) int {
	if rng.Float64() < 0.1 {
		return rng.Intn(vocab)
	}
	band := vocab / topics
	if band < 1 {
		band = 1
	}
	// Zipf-ish within the band via inverse-power transform.
	u := rng.Float64()
	pos := int(math.Pow(u, 2.0) * float64(band))
	if pos >= band {
		pos = band - 1
	}
	w := k*band + pos
	if w >= vocab {
		w = vocab - 1
	}
	return w
}

func docFromCounts(counts map[int32]float64) mllib.Document {
	ids := make([]int32, 0, len(counts))
	for w := range counts {
		ids = append(ids, w)
	}
	sortInt32(ids)
	cs := make([]float64, len(ids))
	for i, w := range ids {
		cs[i] = counts[w]
	}
	return mllib.Document{WordIDs: ids, Counts: cs}
}
