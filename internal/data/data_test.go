package data

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenClassificationShape(t *testing.T) {
	spec := ClassificationSpec{Samples: 100, Features: 50, NNZPerSample: 8, Seed: 1}
	pts := GenClassification(spec)
	if len(pts) != 100 {
		t.Fatalf("got %d samples", len(pts))
	}
	ones := 0
	for _, p := range pts {
		if p.Features.Dim != 50 {
			t.Fatalf("dim = %d", p.Features.Dim)
		}
		if p.Features.NNZ() < 1 || p.Features.NNZ() > 50 {
			t.Fatalf("nnz = %d", p.Features.NNZ())
		}
		if p.Label != 0 && p.Label != 1 {
			t.Fatalf("label = %v", p.Label)
		}
		if p.Label == 1 {
			ones++
		}
	}
	// A hidden linear separator over symmetric features gives roughly
	// balanced classes.
	if ones < 20 || ones > 80 {
		t.Fatalf("labels badly skewed: %d/100 positive", ones)
	}
}

func TestGenClassificationDeterministic(t *testing.T) {
	spec := ClassificationSpec{Samples: 10, Features: 20, NNZPerSample: 4, Seed: 42}
	a := GenClassification(spec)
	b := GenClassification(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce identical data")
	}
	spec.Seed = 43
	c := GenClassification(spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenClassificationPartitionsCoverWhole(t *testing.T) {
	spec := ClassificationSpec{Samples: 103, Features: 10, NNZPerSample: 3, Seed: 7}
	total := 0
	for part := 0; part < 7; part++ {
		total += len(GenClassificationPartition(spec, part, 7))
	}
	if total != 103 {
		t.Fatalf("partitions cover %d samples, want 103", total)
	}
}

func TestGenCorpusValid(t *testing.T) {
	spec := CorpusSpec{Docs: 50, Vocab: 200, Topics: 5, MeanDocLen: 30, Seed: 3}
	docs := GenCorpus(spec)
	if len(docs) != 50 {
		t.Fatalf("got %d docs", len(docs))
	}
	for i, d := range docs {
		if err := d.Validate(200); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		if d.TokenCount() < 1 {
			t.Fatalf("doc %d empty", i)
		}
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	pts := GenClassification(ClassificationSpec{Samples: 25, Features: 40, NNZPerSample: 5, Seed: 9})
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibSVM(&buf, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range pts {
		if got[i].Label != pts[i].Label {
			t.Fatalf("row %d label %v != %v", i, got[i].Label, pts[i].Label)
		}
		if !reflect.DeepEqual(got[i].Features.Indices, pts[i].Features.Indices) {
			t.Fatalf("row %d indices differ", i)
		}
		for j := range pts[i].Features.Values {
			a, b := got[i].Features.Values[j], pts[i].Features.Values[j]
			if a != b {
				// %g keeps full precision for float64, so exact match expected.
				t.Fatalf("row %d value %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestReadLibSVMConventions(t *testing.T) {
	in := strings.NewReader("+1 1:0.5 3:2\n-1 2:1\n\n# comment\n0 1:1\n")
	pts, err := ReadLibSVM(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d rows", len(pts))
	}
	if pts[0].Label != 1 || pts[1].Label != 0 || pts[2].Label != 0 {
		t.Fatalf("labels = %v %v %v", pts[0].Label, pts[1].Label, pts[2].Label)
	}
	// Inferred dim = max index (3, 1-based) = 3.
	if pts[0].Features.Dim != 3 {
		t.Fatalf("inferred dim = %d", pts[0].Features.Dim)
	}
	if pts[0].Features.At(0) != 0.5 || pts[0].Features.At(2) != 2 {
		t.Fatal("sparse values misparsed")
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	for _, bad := range []string{
		"abc 1:1\n",
		"1 nocolon\n",
		"1 0:1\n", // libsvm indices are 1-based
		"1 2:xyz\n",
	} {
		if _, err := ReadLibSVM(strings.NewReader(bad), 0); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestBagOfWordsRoundTrip(t *testing.T) {
	docs := GenCorpus(CorpusSpec{Docs: 20, Vocab: 100, Topics: 4, MeanDocLen: 25, Seed: 5})
	var buf bytes.Buffer
	if err := WriteBagOfWords(&buf, docs, 100); err != nil {
		t.Fatal(err)
	}
	got, vocab, err := ReadBagOfWords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if vocab != 100 || len(got) != len(docs) {
		t.Fatalf("vocab=%d docs=%d", vocab, len(got))
	}
	for i := range docs {
		if !reflect.DeepEqual(got[i], docs[i]) {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestProfiles(t *testing.T) {
	if len(Profiles) != 6 {
		t.Fatalf("Table 2 has 6 datasets, got %d", len(Profiles))
	}
	p, err := ProfileByName("nytimes")
	if err != nil {
		t.Fatal(err)
	}
	if p.Samples != 300_000 || p.Features != 102_660 {
		t.Fatalf("nytimes scale wrong: %+v", p)
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("unknown profile should fail")
	}
	// LDA-N aggregator with K=100: 100 × 102660 × 8 ≈ 82 MB.
	if got := p.AggregatorBytes(100); got != 8*100*102_660 {
		t.Fatalf("AggregatorBytes = %d", got)
	}
	kdd12, _ := ProfileByName("kdd12")
	if got := kdd12.AggregatorBytes(100); got != 8*(54_686_452+2) {
		t.Fatalf("kdd12 AggregatorBytes = %d", got)
	}
}

func TestProfileScaled(t *testing.T) {
	p, _ := ProfileByName("kdd12")
	s := p.Scaled(100_000)
	if s.Samples < 200 || s.Features < 50 {
		t.Fatalf("scaled profile too small: %+v", s)
	}
	if s.NNZPerSample > s.Features {
		t.Fatal("nnz exceeds features after scaling")
	}
	if q := p.Scaled(0); q.Samples != p.Samples {
		t.Fatal("factor<1 should clamp to 1")
	}
}

func TestQuickGeneratedDocsValidate(t *testing.T) {
	f := func(seed int64, docsRaw, vocabRaw uint8) bool {
		spec := CorpusSpec{
			Docs:       int(docsRaw%10) + 1,
			Vocab:      int(vocabRaw%100) + 10,
			Topics:     3,
			MeanDocLen: 15,
			Seed:       seed,
		}
		for _, d := range GenCorpus(spec) {
			if d.Validate(spec.Vocab) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFileLoaders(t *testing.T) {
	dir := t.TempDir()
	pts := GenClassification(ClassificationSpec{Samples: 15, Features: 10, NNZPerSample: 3, Seed: 4})
	libsvmPath := dir + "/d.libsvm"
	f, err := os.Create(libsvmPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLibSVM(f, pts); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadLibSVMFile(libsvmPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("loaded %d points", len(got))
	}
	if _, err := ReadLibSVMFile(dir+"/missing", 0); err == nil {
		t.Fatal("missing file should fail")
	}

	docs := GenCorpus(CorpusSpec{Docs: 8, Vocab: 30, Topics: 2, MeanDocLen: 10, Seed: 1})
	bowPath := dir + "/d.bow"
	f2, err := os.Create(bowPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBagOfWords(f2, docs, 30); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	gotDocs, vocab, err := ReadBagOfWordsFile(bowPath)
	if err != nil || vocab != 30 || len(gotDocs) != 8 {
		t.Fatalf("bow load: %d docs vocab %d err %v", len(gotDocs), vocab, err)
	}
}
