# Sparker build/test entry points. Tier-1 is `make test`; `make race`
# runs the packages where pooled buffers and persistent senders could
# hide data races under the race detector.

GO ?= go

.PHONY: build test race bench benchjson

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The reduction data plane (pooled wire buffers, persistent channel
# senders, fused decode-reduce) plus the rdd engine that drives it.
race:
	$(GO) test -race ./internal/collective ./internal/comm ./internal/rdd ./internal/transport

# Hot-path microbenchmarks: the before/after evidence for the
# zero-allocation reduction work (see DESIGN.md "Performance notes").
bench:
	$(GO) test -run xxx -bench 'RingReduceScatterHot|SerdeF64' -benchmem ./internal/collective
	$(GO) test -run xxx -bench 'LinalgKernels' -benchmem ./internal/linalg

# Machine-readable paper-reproduction results for perf tracking.
benchjson:
	$(GO) run ./cmd/sparkerbench -json > BENCH_reports.json
