# Sparker build/test entry points. Tier-1 is `make test`; `make race`
# runs the packages where pooled buffers and persistent senders could
# hide data races under the race detector; `make check` is the full
# pre-merge gate (vet + tests + race + chaos + telemetry overhead +
# traced-run demo).

GO ?= go

.PHONY: build vet test race test-chaos chaos-elastic overhead trace-demo serve-demo obsv-demo check bench benchjson bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The reduction data plane (pooled wire buffers, persistent senders,
# fused decode-reduce) plus the rdd engine that drives it, the packed
# compute plane (shared scratch free list, ParallelFor pool, cached CSC
# views), the telemetry instruments, and the span exporters.
race:
	$(GO) test -race ./internal/collective ./internal/comm ./internal/rdd ./internal/sched ./internal/transport ./internal/metrics ./internal/trace ./internal/server ./internal/obsv ./internal/linalg ./internal/mllib

# Fault-injection suites (see DESIGN.md "Fault model"): kill/drop/delay
# matrices over the raw collectives, end-to-end core.Aggregate, and
# packed training riding the ring fallback, always under the race
# detector.
test-chaos:
	$(GO) test -race -run 'Chaos|Straggler' ./internal/collective ./internal/core ./internal/rdd ./internal/mllib

# Elastic-membership chaos gate (DESIGN.md §17): kill/evict/join/rejoin
# protocol suites plus training that rides through a kill-and-replace,
# and the scaled-down churn benchmark with its convergence and
# iteration-blowup claims — always under the race detector.
chaos-elastic:
	$(GO) test -race ./internal/membership
	$(GO) test -race -run 'Elastic' ./internal/rdd ./internal/core ./internal/mllib ./internal/bench

# Telemetry overhead gate (see DESIGN.md "Observability"): with tracing
# off the ring hot path must allocate no more per op than the PR 1
# baselines — both the default path and the chunked pipelined path with
# chunking pinned on. Fails the build if disabled telemetry (or the
# chunk pipeline) stops being allocation-free. The packed gate holds
# the compute plane to the same bar: steady-state fused kernel calls
# must allocate nothing per pass (DESIGN.md "Packed compute plane").
overhead:
	$(GO) test -run 'TelemetryOverhead|PipelineOverhead' -v ./internal/collective
	$(GO) test -run 'PackedKernelOverhead' -v ./internal/linalg

# End-to-end tracing demo: a traced LR run whose event log must convert
# to a Perfetto-loadable Chrome trace with >= 2 executor tracks,
# ring-step spans, and cross-track parent stitches.
trace-demo:
	$(GO) run ./cmd/sparker-train -model lr -profile avazu -scale 100000 -iters 3 \
		-executors 4 -cores 2 -strategy split -eventlog /tmp/sparker-trace-demo.log -trace
	$(GO) run ./cmd/sparker-analyze -percentiles -chrome-trace /tmp/sparker-trace-demo.json \
		-validate /tmp/sparker-trace-demo.log
	@echo "load /tmp/sparker-trace-demo.json in ui.perfetto.dev"

# Job-server smoke (see DESIGN.md "Multi-tenant job server"): boots
# sparker-serve in-process, submits a training job over HTTP, waits for
# completion, and scores a prediction through the micro-batched serving
# path. Exercises the whole client-visible surface in a few seconds.
serve-demo:
	$(GO) run ./cmd/sparker-serve -smoke

# Flight-recorder demo (see DESIGN.md "Flight recorder"): a chaos run
# that kills a ring link mid-train, which must trip the always-on
# recorder into writing a postmortem bundle, which sparker-analyze
# must render and validate. Proves the whole anomaly->bundle->report
# path end to end in a couple of seconds.
obsv-demo:
	rm -rf /tmp/sparker-obsv-demo && mkdir -p /tmp/sparker-obsv-demo
	$(GO) run ./cmd/sparker-train -model lr -scale 200000 -iters 3 \
		-executors 3 -cores 2 -strategy split -step-deadline 500ms \
		-obsv /tmp/sparker-obsv-demo -chaos ring-kill
	$(GO) run ./cmd/sparker-analyze -postmortem -validate \
		"$$(ls -t /tmp/sparker-obsv-demo/bundle-*.json | head -n1)"

check: vet test race test-chaos chaos-elastic overhead trace-demo serve-demo obsv-demo

# Hot-path microbenchmarks: the before/after evidence for the
# zero-allocation reduction work (see DESIGN.md "Performance notes").
bench:
	$(GO) test -run xxx -bench 'RingReduceScatterHot|SerdeF64' -benchmem ./internal/collective
	$(GO) test -run xxx -bench 'LinalgKernels' -benchmem ./internal/linalg

# Machine-readable paper-reproduction results for perf tracking.
benchjson:
	$(GO) run ./cmd/sparkerbench -json > BENCH_PR3.json

# Pipelined-ring before/after evidence (DESIGN.md "Pipelined ring
# collectives"): segment-size sweep 1KB->154MB over real TCP loopback,
# chunking off vs on — step p50/p95, wall-clock speedup, overlap ratio.
# Minutes of runtime at the large sizes.
bench-compare:
	$(GO) run ./cmd/sparkerbench -only pipeline -json > BENCH_PR4.json
	@cat BENCH_PR4.json
	$(GO) run ./cmd/sparkerbench -only sched -json > BENCH_PR5.json
	@cat BENCH_PR5.json
	$(GO) run ./cmd/sparkerbench -only compress -json > BENCH_PR6.json
	@cat BENCH_PR6.json
	$(GO) run ./cmd/sparkerbench -only serve -json > BENCH_PR7.json
	@cat BENCH_PR7.json
	$(GO) run ./cmd/sparkerbench -only compute -json > BENCH_PR9.json
	@cat BENCH_PR9.json
	$(GO) run ./cmd/sparkerbench -only elastic -json > BENCH_PR10.json
	@cat BENCH_PR10.json
