# Sparker build/test entry points. Tier-1 is `make test`; `make race`
# runs the packages where pooled buffers and persistent senders could
# hide data races under the race detector; `make check` is the full
# pre-merge gate (vet + tests + race + chaos).

GO ?= go

.PHONY: build vet test race test-chaos check bench benchjson

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The reduction data plane (pooled wire buffers, persistent channel
# senders, fused decode-reduce) plus the rdd engine that drives it.
race:
	$(GO) test -race ./internal/collective ./internal/comm ./internal/rdd ./internal/transport

# Fault-injection suites (see DESIGN.md "Fault model"): kill/drop/delay
# matrices over the raw collectives and end-to-end core.Aggregate,
# always under the race detector.
test-chaos:
	$(GO) test -race -run Chaos ./internal/collective ./internal/core

check: vet test race test-chaos

# Hot-path microbenchmarks: the before/after evidence for the
# zero-allocation reduction work (see DESIGN.md "Performance notes").
bench:
	$(GO) test -run xxx -bench 'RingReduceScatterHot|SerdeF64' -benchmem ./internal/collective
	$(GO) test -run xxx -bench 'LinalgKernels' -benchmem ./internal/linalg

# Machine-readable paper-reproduction results for perf tracking.
benchjson:
	$(GO) run ./cmd/sparkerbench -json > BENCH_reports.json
